"""Control-flow-graph utilities for control-flow units.

Blocks know their successors (from the terminator) and predecessors (from
the use lists), so this module only adds order computations and reachability
— the building blocks for dominators, DCE of unreachable code, and the
lowering passes.
"""

from __future__ import annotations


def successors(block):
    return block.successors()


def predecessors(block):
    return block.predecessors()


def reachable_blocks(unit):
    """The set of blocks reachable from the entry, as ``id -> block``."""
    entry = unit.entry
    if entry is None:
        return {}
    seen = {id(entry): entry}
    stack = [entry]
    while stack:
        block = stack.pop()
        for succ in block.successors():
            if id(succ) not in seen:
                seen[id(succ)] = succ
                stack.append(succ)
    return seen


def reverse_postorder(unit):
    """Blocks in reverse postorder (defs-before-uses friendly order)."""
    entry = unit.entry
    if entry is None:
        return []
    order = []
    visited = set()

    def visit(block):
        visited.add(id(block))
        for succ in block.successors():
            if id(succ) not in visited:
                visit(succ)
        order.append(block)

    visit(entry)
    order.reverse()
    return order


def postorder(unit):
    order = reverse_postorder(unit)
    order.reverse()
    return order


def remove_unreachable_blocks(unit):
    """Delete blocks not reachable from entry; returns number removed.

    Phi nodes in surviving blocks lose their incoming entries from removed
    predecessors.
    """
    reachable = reachable_blocks(unit)
    dead = [b for b in unit.blocks if id(b) not in reachable]
    if not dead:
        return 0
    dead_ids = {id(b) for b in dead}
    for block in unit.blocks:
        if id(block) in dead_ids:
            continue
        for phi in block.phis():
            prune_phi_incoming(phi, dead_ids)
    # Two passes: first drop all operands (breaking cycles among dead code),
    # then unlink.  In valid SSA no live code uses values from unreachable
    # blocks once the phi entries above are pruned.
    for block in dead:
        for inst in list(block.instructions):
            inst.drop_operands()
    for block in dead:
        for inst in list(block.instructions):
            block.remove(inst)
        unit.remove_block(block)
    return len(dead)


def prune_phi_incoming(phi, dead_block_ids):
    """Remove phi incoming pairs whose predecessor is in the given set."""
    pairs = [(v, b) for v, b in phi.phi_pairs() if id(b) not in dead_block_ids]
    rebuild_phi(phi, pairs)


def rebuild_phi(phi, pairs):
    """Replace a phi's operand list with new ``(value, block)`` pairs.

    If only one incoming pair remains, the phi is folded into that value.
    """
    phi.drop_operands()
    if len(pairs) == 1:
        phi.replace_all_uses_with(pairs[0][0])
        if phi.parent is not None:
            phi.parent.remove(phi)
        return None
    for value, block in pairs:
        phi.add_operand(value)
        phi.add_operand(block)
    return phi
