"""Analyses over LLHD IR: CFG orders, dominators, temporal regions,
and the per-unit analysis cache shared by the pass manager."""

from .cfg import (
    postorder, reachable_blocks, rebuild_phi, remove_unreachable_blocks,
    reverse_postorder,
)
from .dominators import DominatorTree
from .manager import ANALYSES, AnalysisManager, register_analysis
from .temporal import TemporalRegions

__all__ = [
    "ANALYSES", "AnalysisManager", "DominatorTree", "TemporalRegions",
    "postorder", "reachable_blocks", "rebuild_phi", "register_analysis",
    "remove_unreachable_blocks", "reverse_postorder",
]
