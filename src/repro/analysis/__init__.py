"""Analyses over LLHD IR: CFG orders, dominators, temporal regions."""

from .cfg import (
    postorder, reachable_blocks, rebuild_phi, remove_unreachable_blocks,
    reverse_postorder,
)
from .dominators import DominatorTree
from .temporal import TemporalRegions

__all__ = [
    "DominatorTree", "TemporalRegions", "postorder", "reachable_blocks",
    "rebuild_phi", "remove_unreachable_blocks", "reverse_postorder",
]
