"""Dominator tree and dominance frontiers.

Implements the Cooper–Harvey–Kennedy iterative algorithm.  Used by the
verifier (SSA dominance checking), mem2reg (phi placement via iterated
dominance frontiers), CSE (scoped value numbering), and TCM (closest common
dominator of drive and exit blocks, section 4.3.3 of the paper).
"""

from __future__ import annotations

from .cfg import reverse_postorder


class DominatorTree:
    """Immutable dominator information for one control-flow unit."""

    def __init__(self, unit):
        self.unit = unit
        self.order = reverse_postorder(unit)
        self._rpo_index = {id(b): i for i, b in enumerate(self.order)}
        self.idom = {}  # id(block) -> immediate dominator block
        self._compute()

    def _compute(self):
        if not self.order:
            return
        entry = self.order[0]
        idom = {id(entry): entry}
        changed = True
        while changed:
            changed = False
            for block in self.order[1:]:
                preds = [p for p in block.predecessors()
                         if id(p) in idom and id(p) in self._rpo_index]
                if not preds:
                    continue
                new_idom = preds[0]
                for p in preds[1:]:
                    new_idom = self._intersect(idom, new_idom, p)
                if idom.get(id(block)) is not new_idom:
                    idom[id(block)] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(self, idom, a, b):
        while a is not b:
            while self._rpo_index[id(a)] > self._rpo_index[id(b)]:
                a = idom[id(a)]
            while self._rpo_index[id(b)] > self._rpo_index[id(a)]:
                b = idom[id(b)]
        return a

    # -- queries -----------------------------------------------------------

    def immediate_dominator(self, block):
        """The immediate dominator, or None for the entry/unreachable."""
        dom = self.idom.get(id(block))
        if dom is None or dom is block:
            return None
        return dom

    def dominates(self, a, b):
        """True if block ``a`` dominates block ``b`` (reflexive)."""
        while True:
            if a is b:
                return True
            nxt = self.idom.get(id(b))
            if nxt is None or nxt is b:
                return False
            b = nxt

    def strictly_dominates(self, a, b):
        return a is not b and self.dominates(a, b)

    def common_dominator(self, a, b):
        """The closest block dominating both ``a`` and ``b`` (or None)."""
        if id(a) not in self.idom or id(b) not in self.idom:
            return None
        while a is not b:
            ia, ib = self._rpo_index[id(a)], self._rpo_index[id(b)]
            if ia > ib:
                a = self.idom[id(a)]
            else:
                b = self.idom[id(b)]
        return a

    def dominance_frontier(self):
        """Map ``id(block) -> set of blocks`` in its dominance frontier."""
        frontier = {id(b): [] for b in self.order}
        frontier_ids = {id(b): set() for b in self.order}
        for block in self.order:
            preds = [p for p in block.predecessors()
                     if id(p) in self._rpo_index]
            if len(preds) < 2:
                continue
            for pred in preds:
                runner = pred
                while runner is not self.idom[id(block)]:
                    if id(block) not in frontier_ids[id(runner)]:
                        frontier_ids[id(runner)].add(id(block))
                        frontier[id(runner)].append(block)
                    runner = self.idom[id(runner)]
        return frontier

    def value_dominates(self, value, user_inst, operand_index=None):
        """True if the definition of ``value`` dominates its use.

        Arguments and constants-in-entry trivially dominate.  For a use in
        a phi, the definition must dominate the *predecessor* terminator
        rather than the phi itself.
        """
        from ..ir.instructions import Instruction
        from ..ir.values import Argument, Block

        if isinstance(value, (Argument, Block)):
            return True
        if not isinstance(value, Instruction):
            return True
        def_block = value.parent
        if def_block is None:
            return False
        if user_inst.opcode == "phi" and operand_index is not None:
            pred = user_inst.operands[operand_index + 1]
            return self.dominates(def_block, pred)
        use_block = user_inst.parent
        if def_block is use_block:
            defs = def_block.instructions
            return defs.index(value) < defs.index(user_inst)
        return self.dominates(def_block, use_block)
