"""Root conftest: make ``src/`` importable without an install.

With this, ``python -m pytest`` works from a fresh checkout — no
``PYTHONPATH=src`` and no ``pip install -e .`` required (both still
work).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
