"""Table 3: comparison against other hardware-targeted IRs.

The LLHD row is introspected from this implementation (each feature probe
checks a real capability); the other rows are literature data.  The
benchmark times the introspection — trivially fast, but it keeps the
table generation inside the same harness as the other experiments.

Run: ``pytest benchmarks/bench_table3_features.py --benchmark-only -s``
"""

from repro.interop import full_table, llhd_row, render_table


def test_llhd_feature_probes(benchmark):
    row = benchmark(llhd_row)
    assert row == ["3", True, True, True, True, True, True, True]


def test_print_table3(capsys):
    table = full_table()
    # Reproduce the paper's key observation: LLHD is the only IR covering
    # the whole flow (behavioural + structural + netlist) and the only
    # Turing-complete one.
    for name, row in table.items():
        if name.startswith("LLHD"):
            assert all(row[1:])
        else:
            assert not all(row[5:8]), f"{name} should not cover all levels"
            assert not row[1], f"{name} should not be Turing-complete"
    with capsys.disabled():
        print()
        print("Table 3 — Comparison against other hardware IRs")
        print(render_table())
