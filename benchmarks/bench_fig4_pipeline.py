"""Figure 4: the pass pipeline across the three IR levels.

Runs the realized pipeline (CF/DCE/CSE/IS → Inline → ECM → TCM → TCFE →
PL → Deseq → techmap) on the synthesizable evaluation designs, verifying
level legality at each boundary: Behavioural in, Structural after the §4
pipeline, Netlist after technology mapping.

Run: ``pytest benchmarks/bench_fig4_pipeline.py --benchmark-only -s``
"""

import pytest

from repro.interop import technology_map
from repro.ir import (
    BEHAVIOURAL, NETLIST, STRUCTURAL, classify, is_at_level, verify_module,
)
from repro.moore import compile_sv
from repro.passes import lower_to_structural

from .common import format_row

# Synthesizable design cores (testbenches excluded — they are rejected by
# the lowering, which Figure 4 also shows: testbench constructs stay at
# the behavioural level).
SYNTHESIZABLE = {
    "acc": """
module acc (input clk, input [31:0] x, input en, output [31:0] q);
  bit [31:0] d;
  always_ff @(posedge clk) q <= #1ns d;
  always_comb begin
    d = q;
    if (en) d = q + x;
  end
endmodule
""",
    "gray_codec": """
module gray_codec (input logic [7:0] b, output logic [7:0] g,
                   output logic [7:0] rt);
  assign g = b ^ (b >> 1);
  always_comb begin
    automatic logic [7:0] acc = g;
    acc = acc ^ (acc >> 1);
    acc = acc ^ (acc >> 2);
    acc = acc ^ (acc >> 4);
    rt = acc;
  end
endmodule
""",
    "dff_rst": """
module dff_rst (input clk, input rst_n, input [7:0] d,
                output logic [7:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 8'd0;
    else q <= d;
  end
endmodule
""",
}


@pytest.mark.parametrize("name", sorted(SYNTHESIZABLE))
def test_pipeline_stage_levels(benchmark, name):
    def pipeline():
        module = compile_sv(SYNTHESIZABLE[name])
        assert is_at_level(module, BEHAVIOURAL)
        report = lower_to_structural(module)
        verify_module(module, level=STRUCTURAL)
        return module, report

    module, report = benchmark(pipeline)
    assert classify(module) in (STRUCTURAL, NETLIST)


def test_acc_reaches_netlist_level():
    """Behavioural → Structural → Netlist, end to end (the full left-to-
    right arrow of Figure 4), for a purely combinational design."""
    module = compile_sv(SYNTHESIZABLE["gray_codec"])
    lower_to_structural(module)
    netlist, library = technology_map(module)
    assert classify(netlist) == NETLIST


def test_print_figure4_summary(capsys):
    rows = []
    for name, source in sorted(SYNTHESIZABLE.items()):
        module = compile_sv(source)
        n_procs = len(module.processes())
        report = lower_to_structural(module)
        level = classify(module)
        rows.append((name, n_procs, len(report.lowered_by_pl),
                     len(report.lowered_by_deseq), level))
    with capsys.disabled():
        print()
        print("Figure 4 — realized pass pipeline per design")
        header = ("design", "processes", "via PL", "via Deseq", "level")
        widths = [12, 10, 7, 10, 12]
        print(format_row(header, widths))
        print("-" * (sum(widths) + 2 * len(widths)))
        for row in rows:
            print(format_row(row, widths))


def test_print_pass_instrumentation(capsys):
    """Per-pass wall time / changed counts over all designs, through one
    shared PassManager (the `-stats` view of `python -m repro.opt`)."""
    from repro.passes import PassManager, format_statistics

    pm = PassManager()
    for name, source in sorted(SYNTHESIZABLE.items()):
        module = compile_sv(source)
        lower_to_structural(module, pm=pm)
    records = list(pm.records.values())
    assert records, "the lowering must run passes"
    assert pm.am.hits > 0, "analysis caching must get hits on this corpus"
    with capsys.disabled():
        print()
        print("Figure 4 — per-pass instrumentation (all designs)")
        print(format_statistics(records, pm.am))
