"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 2 for the index).  Absolute numbers are
Python-scale; the *shape* (who wins, by what factor) is what reproduces
the paper — EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import time

from repro.designs import DESIGNS, TABLE2_ORDER, compile_design
from repro.sim import simulate

# Cycle budgets per design for benchmarking: sized so the reference
# interpreter finishes a run in roughly a second.
BENCH_CYCLES = {
    "gray": 60, "fir": 40, "lfsr": 60, "lzc": 30, "fifo": 60,
    "cdc_gray": 40, "cdc_strobe": 15, "rr_arbiter": 50,
    "stream_delayer": 60, "riscv": 200,
}


def timed_simulation(name, backend, cycles=None):
    """Compile (untimed) then simulate (timed); returns (seconds, result)."""
    cycles = cycles if cycles is not None else BENCH_CYCLES[name]
    module = compile_design(name, cycles=cycles)
    top = DESIGNS[name].top
    start = time.perf_counter()
    result = simulate(module, top, backend=backend)
    elapsed = time.perf_counter() - start
    assert result.assertion_failures == [], \
        f"{name}/{backend}: design self-checks failed"
    return elapsed, result


def extrapolate(seconds, cycles, target_cycles):
    """Scale a measured runtime to the paper's cycle count."""
    return seconds * (target_cycles / max(cycles, 1))


def format_row(columns, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))
