"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 2 for the index).  Absolute numbers are
Python-scale; the *shape* (who wins, by what factor) is what reproduces
the paper — EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import json
import time

from repro.designs import (
    DESIGNS, TABLE2_ORDER, compile_design, expand_cycle_budgets,
)
from repro.sim import simulate, simulate_batch

# Cycle budgets per design for benchmarking: sized so the reference
# interpreter finishes a run in roughly a second.  Nine-valued ``_l``
# variants share their two-state sibling's budget.
BENCH_CYCLES = expand_cycle_budgets({
    "gray": 60, "fir": 40, "lfsr": 60, "lzc": 30, "fifo": 60,
    "cdc_gray": 40, "cdc_strobe": 15, "rr_arbiter": 50,
    "stream_delayer": 60, "riscv": 200, "sorter": 40,
})


def timed_simulation(name, backend, cycles=None, netlist=False):
    """Compile (untimed) then simulate (timed); returns (seconds, result).

    With ``netlist``, the design is additionally lowered to Structural
    LLHD and technology-mapped (zero gate delay) before simulation — the
    compile/lower/map cost stays outside the timed region, so the
    numbers isolate the runtime cost of gate-level granularity.
    """
    import gc

    cycles = cycles if cycles is not None else BENCH_CYCLES[name]
    module = compile_design(name, cycles=cycles)
    if netlist:
        from repro.interop import netlist_design
        from repro.passes import lower_to_structural

        lower_to_structural(module, strict=False, verify=False)
        module = netlist_design(module)
    top = DESIGNS[name].top
    # Collect frontend debris now, then *disable* the collector for the
    # timed region: cyclic GC passes triggered mid-run scan the whole
    # persistent heap, so their cost grows with how many designs this
    # process has already measured — an in-process riscv run measured
    # ~1.5x slower than a fresh-process one before this was hermetic.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = simulate(module, top, backend=backend)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    assert result.assertion_failures == [], \
        f"{name}/{backend}: design self-checks failed"
    return elapsed, result


def timed_batch_simulation(name, backend, cycles, lanes):
    """Compile (untimed) then run a K-lane batch (timed).

    Uniform stimulus (no per-lane variants), so the run stays on the
    vectorized fast path — the configuration whose per-lane marginal
    cost the batch engine is supposed to collapse.  Same GC hygiene as
    :func:`timed_simulation`.
    """
    import gc

    module = compile_design(name, cycles=cycles)
    top = DESIGNS[name].top
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        start = time.perf_counter()
        result = simulate_batch(module, top, lanes, backend=backend)
        elapsed = time.perf_counter() - start
    finally:
        if gc_was_enabled:
            gc.enable()
    assert result.assertion_failures == [], \
        f"{name}/{backend}@b{lanes}: design self-checks failed"
    return elapsed, result


def extrapolate(seconds, cycles, target_cycles):
    """Scale a measured runtime to the paper's cycle count."""
    return seconds * (target_cycles / max(cycles, 1))


def format_row(columns, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))


# -- BENCH_sim.json harness ----------------------------------------------------
#
# Every PR records the simulation-performance trajectory in BENCH_sim.json
# at the repository root: per design and engine, the wall time of a run at
# the benchmark cycle budget and the *marginal* cost per simulated cycle
# (two-point slope, which amortizes one-time elaboration/compilation).
# Successive runs merge under labels ("before"/"after"), so a PR can show
# its own speedup and future PRs inherit the trajectory.

def trace_fingerprint(trace):
    """A canonical byte string of a finalized trace (for identity checks)."""
    items = sorted(trace.finalize().changes.items())
    return repr([(name, [(fs, repr(v)) for fs, v in history])
                 for name, history in items])


def measure_backend(name, backend, cycles, runs=1, netlist=False,
                    min_wall=0.04):
    """Measure one design under one engine.

    Returns a dict with wall seconds at ``cycles``, the marginal seconds
    per cycle (slope between ``cycles`` and ``3*cycles``), the kernel
    stats, and the trace fingerprint at ``cycles``.  With ``runs > 1``
    each point is measured that many times and the slope is computed
    from the *minimum* short and long timings — scheduler noise only
    ever adds time, so min-of-N on the raw timings is the right damper
    for a regression gate (min over per-pair slope differences would
    instead select the pair whose short run was most inflated).

    ``cycles`` is a starting point, not a contract: it grows (doubling,
    up to 64x) until one run takes at least ``min_wall`` seconds, so the
    two-point slope is computed from measurably long runs on fast
    machines too — a 25% regression gate on a 5 ms sample is noise.  The
    cycle count actually used is recorded in the result; the marginal
    us/cycle it yields is cycle-count-independent, which is what the
    baseline comparison relies on.
    """
    t_short, result = timed_simulation(name, backend, cycles,
                                       netlist=netlist)
    ceiling = cycles * 64
    while t_short < min_wall and cycles * 2 <= ceiling:
        cycles *= 2
        t_short, result = timed_simulation(name, backend, cycles,
                                           netlist=netlist)
    # Min-of-N on the *raw* timings (noise only ever adds time), then
    # one slope from the two minima — taking the minimum of per-pair
    # slope differences instead would select whichever pair had its
    # short run most inflated, biasing the marginal cost low.
    shorts = [t_short]
    longs = []
    for i in range(runs):
        longs.append(timed_simulation(name, backend, 3 * cycles,
                                      netlist=netlist)[0])
        if i < runs - 1:  # the adaptive-growth run already measured one
            shorts.append(timed_simulation(name, backend, cycles,
                                           netlist=netlist)[0])
    best_wall = min(shorts)
    best_slope = (min(longs) - best_wall) / (2 * cycles)
    if best_slope <= 0:  # timing noise on very small designs
        best_slope = min(longs) / (3 * cycles)
    return {
        "cycles": cycles,
        "wall_s": round(best_wall, 6),
        "per_cycle_us": round(best_slope * 1e6, 3),
        "stats": dict(result.stats),
        "fingerprint": trace_fingerprint(result.trace),
        "result": result,
    }


def measure_batch(name, backend, cycles, lanes, runs=1, min_wall=0.04):
    """Measure one design as a K-lane uniform batch.

    Same adaptive-cycles, min-of-N two-point slope as
    :func:`measure_backend`; the headline ``per_cycle_us`` is the
    *per-lane* marginal cost (batched slope divided by K) so the value
    is directly comparable to — and gated against — the scalar engines'
    numbers.  The raw batched slope is kept as ``batch_per_cycle_us``.
    """
    t_short, result = timed_batch_simulation(name, backend, cycles, lanes)
    ceiling = cycles * 64
    while t_short < min_wall and cycles * 2 <= ceiling:
        cycles *= 2
        t_short, result = timed_batch_simulation(name, backend, cycles,
                                                 lanes)
    shorts = [t_short]
    longs = []
    for i in range(runs):
        longs.append(timed_batch_simulation(name, backend, 3 * cycles,
                                            lanes)[0])
        if i < runs - 1:
            shorts.append(timed_batch_simulation(name, backend, cycles,
                                                 lanes)[0])
    best_wall = min(shorts)
    best_slope = (min(longs) - best_wall) / (2 * cycles)
    if best_slope <= 0:
        best_slope = min(longs) / (3 * cycles)
    return {
        "cycles": cycles,
        "lanes": lanes,
        "wall_s": round(best_wall, 6),
        "per_cycle_us": round(best_slope * 1e6 / lanes, 3),
        "batch_per_cycle_us": round(best_slope * 1e6, 3),
        "stats": dict(result.stats),
    }


def run_sim_benchmarks(designs, backends=("interp", "blaze"), runs=1,
                       netlist_designs=(), batch_designs=(),
                       batch_lanes=(1, 4, 16), batch_backend="blaze",
                       levelized_designs=()):
    """Measure ``designs`` under ``backends``; assert identical traces.

    Trace identity is checked with dedicated runs at the design's fixed
    benchmark cycle count — the *timing* runs grow their cycle counts
    adaptively per engine (see :func:`measure_backend`), so their traces
    are not comparable to each other.  Designs listed in
    ``netlist_designs`` are *additionally* measured at the netlist level
    (lowered + technology-mapped, zero gate delay), recorded under
    ``<backend>@netlist`` keys; their traces must match the behavioural
    run signal-for-signal on every shared signal.  Designs listed in
    ``levelized_designs`` get a ``levelized@netlist`` row the same way —
    the ahead-of-time compiled cone at the netlist level, whose headline
    comparison is against the *behavioural* blaze cost (the paper's
    "netlist as cheap as behavioural" claim).

    Designs listed in ``batch_designs`` are additionally measured as
    uniform K-lane batches for each K in ``batch_lanes``, recorded
    under ``<batch_backend>@bK`` keys whose ``per_cycle_us`` is the
    *per-lane* marginal cost; before timing, every demuxed lane of a
    probe batch must be byte-identical to the scalar run.
    """
    out = {}
    for name in designs:
        cycles = BENCH_CYCLES[name]
        # Equivalence runs at a common cycle count.
        reference = None
        prints = {}
        for backend in backends:
            _, result = timed_simulation(name, backend, cycles)
            if reference is None:
                reference = result
            prints[backend] = trace_fingerprint(result.trace)
        mismatched = [b for b in backends[1:]
                      if prints[b] != prints[backends[0]]]
        if mismatched:
            raise AssertionError(
                f"{name}: traces diverge between {backends[0]} and "
                f"{', '.join(mismatched)}")
        netlist_backends = list(backends) if name in netlist_designs \
            else []
        if name in levelized_designs:
            netlist_backends.append("levelized")
        if netlist_backends:
            active = reference.trace.live_signals()
            for backend in netlist_backends:
                _, nl = timed_simulation(name, backend, cycles,
                                         netlist=True)
                # Netlist traces add cell nets; every *changing* signal
                # of the behavioural run must survive under its own name
                # and match exactly.
                missing = active - set(nl.trace.finalize().changes)
                if missing:
                    raise AssertionError(
                        f"{name}: netlist run dropped live signals "
                        f"under {backend}: {sorted(missing)[:4]}")
                diffs = reference.trace.differences(nl.trace)
                if diffs:
                    raise AssertionError(
                        f"{name}: netlist trace diverges under "
                        f"{backend}: {diffs[:3]}")
        if name in batch_designs:
            # Demux-correctness probe at the equivalence cycle count:
            # each lane of a K=4 batch must match the scalar trace.
            probe_lanes = 4
            module = compile_design(name, cycles=cycles)
            probe = simulate_batch(module, DESIGNS[name].top, probe_lanes,
                                   backend=batch_backend)
            for k in range(probe_lanes):
                if trace_fingerprint(probe.lane(k).trace) != \
                        prints[batch_backend]:
                    raise AssertionError(
                        f"{name}: batched lane {k} trace diverges from "
                        f"the scalar {batch_backend} run")
        # Timing runs (adaptive cycles, min-of-N slope).
        per_backend = {}
        for backend in backends:
            per_backend[backend] = measure_backend(
                name, backend, cycles, runs=runs)
        for backend in netlist_backends:
            per_backend[f"{backend}@netlist"] = measure_backend(
                name, backend, cycles, runs=runs, netlist=True)
        if name in batch_designs:
            for lanes in batch_lanes:
                per_backend[f"{batch_backend}@b{lanes}"] = measure_batch(
                    name, batch_backend, cycles, lanes, runs=runs)
        for m in per_backend.values():
            m.pop("result", None)
            m.pop("fingerprint", None)
        out[name] = {
            "backends": per_backend,
            "traces_identical": True,
        }
    return out


def merge_bench_json(path, label, results, meta=None):
    """Merge a labelled measurement set into ``path`` and add speedups."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (FileNotFoundError, ValueError):
        doc = {"designs": {}}
    doc.setdefault("designs", {})
    if meta:
        slot = doc.setdefault("meta", {})
        measured = set(slot.get("designs", [])) | set(meta.get("designs", []))
        slot.update(meta)
        slot["designs"] = sorted(measured)
    for name, entry in results.items():
        slot = doc["designs"].setdefault(name, {})
        slot[label] = entry
        _annotate_speedups(slot)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


# -- bench-regression gate -----------------------------------------------------


def netlist_cost_ratios(results):
    """Per-design netlist/behavioural marginal-cost ratios.

    Returns ``{name: {"<engine>_netlist_cost": ratio}}`` for every
    design with both rows: ``interp``/``blaze`` against their own
    behavioural run, and ``levelized@netlist`` against the *behavioural
    blaze* cost — the engine has no behavioural mode, and "netlist as
    cheap as compiled behavioural" is the claim the ratio gates.
    Ratios are machine-speed-free by construction, so the CI gate
    compares them against committed ceilings without normalization.
    """
    out = {}
    for name, entry in results.items():
        rows = entry["backends"]
        ratios = {}
        for engine in ("interp", "blaze"):
            base = rows.get(engine, {}).get("per_cycle_us")
            netlist = rows.get(f"{engine}@netlist", {}).get("per_cycle_us")
            if base and netlist:
                ratios[f"{engine}_netlist_cost"] = netlist / base
        blaze = rows.get("blaze", {}).get("per_cycle_us")
        levelized = rows.get("levelized@netlist", {}).get("per_cycle_us")
        if blaze and levelized:
            ratios["levelized_netlist_cost"] = levelized / blaze
        if ratios:
            out[name] = ratios
    return out


def baseline_from_results(results, meta=None, ceiling_headroom=0.5):
    """A flat committed-baseline document from one measurement set:
    ``designs.<name>.<engine> -> marginal us/cycle``, plus per-design
    ``netlist_cost_ceilings`` — the measured netlist/behavioural ratio
    with ``ceiling_headroom`` slack, which the bench gate enforces as an
    absolute ceiling (ratios cancel machine speed, so no normalization
    applies to them).  The headroom is wider than the marginal-cost
    tolerance because a ratio divides two *separately timed* legs — a
    load spike during either leg moves it both ways — while the failure
    mode it guards against (cells falling back to event-driven
    execution) shifts ratios by 2–9x, far beyond any noise."""
    doc = {"designs": {}, "meta": dict(meta or {})}
    for name, entry in results.items():
        doc["designs"][name] = {
            engine: m["per_cycle_us"]
            for engine, m in entry["backends"].items()}
    ceilings = {
        name: {key: round(ratio * (1.0 + ceiling_headroom), 2)
               for key, ratio in ratios.items()}
        for name, ratios in netlist_cost_ratios(results).items()}
    if ceilings:
        doc["netlist_cost_ceilings"] = ceilings
    return doc


def compare_to_baseline(results, baseline, tolerance=0.25, normalize=True):
    """Compare measured marginal us/cycle against a committed baseline.

    Returns ``(regressions, lines)``: the cells whose cost grew by more
    than ``tolerance`` (25% by default), and a human-readable report.
    With ``normalize`` (the default) every ratio is divided by the
    geometric mean ratio across all shared cells first, so a uniformly
    faster or slower machine (CI runners vary) cancels out and only
    *relative* per-cell regressions fire the gate.

    When the baseline carries ``netlist_cost_ceilings``, each design's
    measured netlist/behavioural marginal-cost ratio is additionally
    gated against its committed ceiling — an *absolute* check (the
    ratio already cancels machine speed), so a netlist engine that
    regresses relative to its behavioural reference fails even when
    every individual cell drifts uniformly.
    """
    import math

    base = baseline.get("designs", {})
    ratios = {}
    for name, entry in results.items():
        for engine, m in entry["backends"].items():
            ref = base.get(name, {}).get(engine)
            cur = m["per_cycle_us"]
            if ref and cur:
                ratios[(name, engine)] = cur / ref
    if not ratios:
        return [], ["no overlapping cells between baseline and run"]
    shift = 1.0
    if normalize and len(ratios) > 1:
        shift = math.exp(
            sum(math.log(r) for r in ratios.values()) / len(ratios))
    lines = [f"machine shift (geo-mean ratio): {shift:.2f}x"
             if normalize else "comparing raw us/cycle (no normalization)"]
    regressions = []
    for (name, engine), ratio in sorted(ratios.items()):
        rel = ratio / shift
        flag = ""
        if rel > 1.0 + tolerance:
            regressions.append((name, engine, rel))
            flag = f"  REGRESSION (> {tolerance:.0%})"
        lines.append(
            f"  {name:18s} {engine:14s} {rel:6.2f}x vs baseline{flag}")
    ceilings = baseline.get("netlist_cost_ceilings", {})
    if ceilings:
        measured = netlist_cost_ratios(results)
        lines.append("netlist-cost ceilings (netlist/behavioural ratio, "
                     "absolute):")
        for name in sorted(measured):
            for key, ratio in sorted(measured[name].items()):
                ceiling = ceilings.get(name, {}).get(key)
                if ceiling is None:
                    continue
                flag = ""
                if ratio > ceiling:
                    regressions.append((name, key, ratio / ceiling))
                    flag = "  REGRESSION (above ceiling)"
                lines.append(f"  {name:18s} {key:22s} {ratio:6.2f}x "
                             f"(ceiling {ceiling:.2f}x){flag}")
    return regressions, lines


def _annotate_speedups(slot):
    """Derive before/after and cross-engine ratios where data allows."""
    speedup = {}
    after = slot.get("after", {}).get("backends", {})
    before = slot.get("before", {}).get("backends", {})
    for engine in set(before) & set(after):
        b = before[engine].get("per_cycle_us")
        a = after[engine].get("per_cycle_us")
        if b and a:
            speedup[engine] = round(b / a, 2)
    newest = after or before
    interp = newest.get("interp", {}).get("per_cycle_us")
    blaze = newest.get("blaze", {}).get("per_cycle_us")
    if interp and blaze:
        speedup["blaze_vs_interp"] = round(interp / blaze, 2)
    for engine in ("interp", "blaze"):
        base = newest.get(engine, {}).get("per_cycle_us")
        netlist = newest.get(f"{engine}@netlist", {}).get("per_cycle_us")
        if base and netlist:
            # >1: how much slower gate-level granularity simulates.
            speedup[f"{engine}_netlist_cost"] = round(netlist / base, 2)
    blaze = newest.get("blaze", {}).get("per_cycle_us")
    levelized = newest.get("levelized@netlist", {}).get("per_cycle_us")
    if blaze and levelized:
        # The levelized engine has no behavioural mode; its cost ratio
        # is against the compiled *behavioural* reference (the paper's
        # netlist-as-cheap-as-behavioural claim, target <= 1.5x).
        speedup["levelized_netlist_cost"] = round(levelized / blaze, 2)
    if speedup:
        slot["speedup"] = speedup
