"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 2 for the index).  Absolute numbers are
Python-scale; the *shape* (who wins, by what factor) is what reproduces
the paper — EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import json
import time

from repro.designs import DESIGNS, TABLE2_ORDER, compile_design
from repro.sim import simulate

# Cycle budgets per design for benchmarking: sized so the reference
# interpreter finishes a run in roughly a second.
BENCH_CYCLES = {
    "gray": 60, "fir": 40, "lfsr": 60, "lzc": 30, "fifo": 60,
    "cdc_gray": 40, "cdc_strobe": 15, "rr_arbiter": 50,
    "stream_delayer": 60, "riscv": 200, "sorter": 40,
    "gray_l": 60, "fir_l": 40, "fifo_l": 60, "cdc_gray_l": 40,
}


def timed_simulation(name, backend, cycles=None):
    """Compile (untimed) then simulate (timed); returns (seconds, result)."""
    import gc

    cycles = cycles if cycles is not None else BENCH_CYCLES[name]
    module = compile_design(name, cycles=cycles)
    top = DESIGNS[name].top
    # Collect frontend debris now so GC pauses don't land in the timed
    # region (the harness sweeps many designs in one process).
    gc.collect()
    start = time.perf_counter()
    result = simulate(module, top, backend=backend)
    elapsed = time.perf_counter() - start
    assert result.assertion_failures == [], \
        f"{name}/{backend}: design self-checks failed"
    return elapsed, result


def extrapolate(seconds, cycles, target_cycles):
    """Scale a measured runtime to the paper's cycle count."""
    return seconds * (target_cycles / max(cycles, 1))


def format_row(columns, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))


# -- BENCH_sim.json harness ----------------------------------------------------
#
# Every PR records the simulation-performance trajectory in BENCH_sim.json
# at the repository root: per design and engine, the wall time of a run at
# the benchmark cycle budget and the *marginal* cost per simulated cycle
# (two-point slope, which amortizes one-time elaboration/compilation).
# Successive runs merge under labels ("before"/"after"), so a PR can show
# its own speedup and future PRs inherit the trajectory.

def trace_fingerprint(trace):
    """A canonical byte string of a finalized trace (for identity checks)."""
    items = sorted(trace.finalize().changes.items())
    return repr([(name, [(fs, repr(v)) for fs, v in history])
                 for name, history in items])


def measure_backend(name, backend, cycles, runs=1):
    """Measure one design under one engine.

    Returns a dict with wall seconds at ``cycles``, the marginal seconds
    per cycle (slope between ``cycles`` and ``3*cycles``), the kernel
    stats, and the trace fingerprint at ``cycles``.
    """
    t_short, result = timed_simulation(name, backend, cycles)
    for _ in range(runs - 1):
        t_short = min(t_short, timed_simulation(name, backend, cycles)[0])
    t_long, _ = timed_simulation(name, backend, 3 * cycles)
    for _ in range(runs - 1):
        t_long = min(t_long, timed_simulation(name, backend, 3 * cycles)[0])
    slope = (t_long - t_short) / (2 * cycles)
    if slope <= 0:  # timing noise on very small designs
        slope = t_long / (3 * cycles)
    return {
        "cycles": cycles,
        "wall_s": round(t_short, 6),
        "per_cycle_us": round(slope * 1e6, 3),
        "stats": dict(result.stats),
        "fingerprint": trace_fingerprint(result.trace),
    }


def run_sim_benchmarks(designs, backends=("interp", "blaze"), runs=1):
    """Measure ``designs`` under ``backends``; assert identical traces."""
    out = {}
    for name in designs:
        cycles = BENCH_CYCLES[name]
        per_backend = {}
        for backend in backends:
            per_backend[backend] = measure_backend(
                name, backend, cycles, runs=runs)
        prints = {b: m.pop("fingerprint") for b, m in per_backend.items()}
        reference = prints[backends[0]]
        mismatched = [b for b in backends[1:] if prints[b] != reference]
        if mismatched:
            raise AssertionError(
                f"{name}: traces diverge between {backends[0]} and "
                f"{', '.join(mismatched)}")
        out[name] = {
            "backends": per_backend,
            "traces_identical": True,
        }
    return out


def merge_bench_json(path, label, results, meta=None):
    """Merge a labelled measurement set into ``path`` and add speedups."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (FileNotFoundError, ValueError):
        doc = {"designs": {}}
    doc.setdefault("designs", {})
    if meta:
        slot = doc.setdefault("meta", {})
        measured = set(slot.get("designs", [])) | set(meta.get("designs", []))
        slot.update(meta)
        slot["designs"] = sorted(measured)
    for name, entry in results.items():
        slot = doc["designs"].setdefault(name, {})
        slot[label] = entry
        _annotate_speedups(slot)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def _annotate_speedups(slot):
    """Derive before/after and cross-engine ratios where data allows."""
    speedup = {}
    after = slot.get("after", {}).get("backends", {})
    before = slot.get("before", {}).get("backends", {})
    for engine in set(before) & set(after):
        b = before[engine].get("per_cycle_us")
        a = after[engine].get("per_cycle_us")
        if b and a:
            speedup[engine] = round(b / a, 2)
    newest = after or before
    interp = newest.get("interp", {}).get("per_cycle_us")
    blaze = newest.get("blaze", {}).get("per_cycle_us")
    if interp and blaze:
        speedup["blaze_vs_interp"] = round(interp / blaze, 2)
    if speedup:
        slot["speedup"] = speedup
