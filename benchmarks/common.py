"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one table or figure of the paper's
evaluation (see DESIGN.md section 2 for the index).  Absolute numbers are
Python-scale; the *shape* (who wins, by what factor) is what reproduces
the paper — EXPERIMENTS.md records the comparison.
"""

from __future__ import annotations

import json
import time

from repro.designs import (
    DESIGNS, TABLE2_ORDER, compile_design, expand_cycle_budgets,
)
from repro.sim import simulate

# Cycle budgets per design for benchmarking: sized so the reference
# interpreter finishes a run in roughly a second.  Nine-valued ``_l``
# variants share their two-state sibling's budget.
BENCH_CYCLES = expand_cycle_budgets({
    "gray": 60, "fir": 40, "lfsr": 60, "lzc": 30, "fifo": 60,
    "cdc_gray": 40, "cdc_strobe": 15, "rr_arbiter": 50,
    "stream_delayer": 60, "riscv": 200, "sorter": 40,
})


def timed_simulation(name, backend, cycles=None, netlist=False):
    """Compile (untimed) then simulate (timed); returns (seconds, result).

    With ``netlist``, the design is additionally lowered to Structural
    LLHD and technology-mapped (zero gate delay) before simulation — the
    compile/lower/map cost stays outside the timed region, so the
    numbers isolate the runtime cost of gate-level granularity.
    """
    import gc

    cycles = cycles if cycles is not None else BENCH_CYCLES[name]
    module = compile_design(name, cycles=cycles)
    if netlist:
        from repro.interop import netlist_design
        from repro.passes import lower_to_structural

        lower_to_structural(module, strict=False, verify=False)
        module = netlist_design(module)
    top = DESIGNS[name].top
    # Collect frontend debris now so GC pauses don't land in the timed
    # region (the harness sweeps many designs in one process).
    gc.collect()
    start = time.perf_counter()
    result = simulate(module, top, backend=backend)
    elapsed = time.perf_counter() - start
    assert result.assertion_failures == [], \
        f"{name}/{backend}: design self-checks failed"
    return elapsed, result


def extrapolate(seconds, cycles, target_cycles):
    """Scale a measured runtime to the paper's cycle count."""
    return seconds * (target_cycles / max(cycles, 1))


def format_row(columns, widths):
    return "  ".join(str(c).rjust(w) for c, w in zip(columns, widths))


# -- BENCH_sim.json harness ----------------------------------------------------
#
# Every PR records the simulation-performance trajectory in BENCH_sim.json
# at the repository root: per design and engine, the wall time of a run at
# the benchmark cycle budget and the *marginal* cost per simulated cycle
# (two-point slope, which amortizes one-time elaboration/compilation).
# Successive runs merge under labels ("before"/"after"), so a PR can show
# its own speedup and future PRs inherit the trajectory.

def trace_fingerprint(trace):
    """A canonical byte string of a finalized trace (for identity checks)."""
    items = sorted(trace.finalize().changes.items())
    return repr([(name, [(fs, repr(v)) for fs, v in history])
                 for name, history in items])


def measure_backend(name, backend, cycles, runs=1, netlist=False):
    """Measure one design under one engine.

    Returns a dict with wall seconds at ``cycles``, the marginal seconds
    per cycle (slope between ``cycles`` and ``3*cycles``), the kernel
    stats, and the trace fingerprint at ``cycles``.
    """
    t_short, result = timed_simulation(name, backend, cycles,
                                       netlist=netlist)
    for _ in range(runs - 1):
        t_short = min(t_short, timed_simulation(
            name, backend, cycles, netlist=netlist)[0])
    t_long, _ = timed_simulation(name, backend, 3 * cycles,
                                 netlist=netlist)
    for _ in range(runs - 1):
        t_long = min(t_long, timed_simulation(
            name, backend, 3 * cycles, netlist=netlist)[0])
    slope = (t_long - t_short) / (2 * cycles)
    if slope <= 0:  # timing noise on very small designs
        slope = t_long / (3 * cycles)
    return {
        "cycles": cycles,
        "wall_s": round(t_short, 6),
        "per_cycle_us": round(slope * 1e6, 3),
        "stats": dict(result.stats),
        "fingerprint": trace_fingerprint(result.trace),
        "result": result,
    }


def run_sim_benchmarks(designs, backends=("interp", "blaze"), runs=1,
                       netlist_designs=()):
    """Measure ``designs`` under ``backends``; assert identical traces.

    Designs listed in ``netlist_designs`` are *additionally* measured at
    the netlist level (lowered + technology-mapped, zero gate delay),
    recorded under ``<backend>@netlist`` keys; their traces must match
    the behavioural run signal-for-signal on every shared signal.
    """
    out = {}
    for name in designs:
        cycles = BENCH_CYCLES[name]
        per_backend = {}
        for backend in backends:
            per_backend[backend] = measure_backend(
                name, backend, cycles, runs=runs)
        if name in netlist_designs:
            for backend in backends:
                per_backend[f"{backend}@netlist"] = measure_backend(
                    name, backend, cycles, runs=runs, netlist=True)
        reference = per_backend[backends[0]].pop("result")
        prints = {}
        for b, m in per_backend.items():
            result = m.pop("result", None)
            if b.endswith("@netlist"):
                # Netlist traces add cell nets; every *changing* signal
                # of the behavioural run must survive under its own name
                # and match exactly.
                m.pop("fingerprint")
                active = reference.trace.live_signals()
                missing = active - set(result.trace.finalize().changes)
                if missing:
                    raise AssertionError(
                        f"{name}: netlist run dropped live signals "
                        f"under {b}: {sorted(missing)[:4]}")
                diffs = reference.trace.differences(result.trace)
                if diffs:
                    raise AssertionError(
                        f"{name}: netlist trace diverges under {b}: "
                        f"{diffs[:3]}")
            else:
                prints[b] = m.pop("fingerprint")
        mismatched = [b for b in backends[1:]
                      if prints[b] != prints[backends[0]]]
        if mismatched:
            raise AssertionError(
                f"{name}: traces diverge between {backends[0]} and "
                f"{', '.join(mismatched)}")
        out[name] = {
            "backends": per_backend,
            "traces_identical": True,
        }
    return out


def merge_bench_json(path, label, results, meta=None):
    """Merge a labelled measurement set into ``path`` and add speedups."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (FileNotFoundError, ValueError):
        doc = {"designs": {}}
    doc.setdefault("designs", {})
    if meta:
        slot = doc.setdefault("meta", {})
        measured = set(slot.get("designs", [])) | set(meta.get("designs", []))
        slot.update(meta)
        slot["designs"] = sorted(measured)
    for name, entry in results.items():
        slot = doc["designs"].setdefault(name, {})
        slot[label] = entry
        _annotate_speedups(slot)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc


def _annotate_speedups(slot):
    """Derive before/after and cross-engine ratios where data allows."""
    speedup = {}
    after = slot.get("after", {}).get("backends", {})
    before = slot.get("before", {}).get("backends", {})
    for engine in set(before) & set(after):
        b = before[engine].get("per_cycle_us")
        a = after[engine].get("per_cycle_us")
        if b and a:
            speedup[engine] = round(b / a, 2)
    newest = after or before
    interp = newest.get("interp", {}).get("per_cycle_us")
    blaze = newest.get("blaze", {}).get("per_cycle_us")
    if interp and blaze:
        speedup["blaze_vs_interp"] = round(interp / blaze, 2)
    for engine in ("interp", "blaze"):
        base = newest.get(engine, {}).get("per_cycle_us")
        netlist = newest.get(f"{engine}@netlist", {}).get("per_cycle_us")
        if base and netlist:
            # >1: how much slower gate-level granularity simulates.
            speedup[f"{engine}_netlist_cost"] = round(netlist / base, 2)
    if speedup:
        slot["speedup"] = speedup
