"""Table 2: simulation performance of the three simulators.

Paper columns: LLHD reference interpreter ("Int."), JIT-accelerated
simulator ("JIT"), commercial simulator ("Comm." — here the independent
cycle simulator, DESIGN.md substitution 1), over the ten evaluation
designs.  The claims being reproduced:

* the interpreter is orders of magnitude slower than compiled simulation;
* the compiled (Blaze-style) simulator is competitive with the
  independent baseline (0.2×–2.4× in the paper);
* traces match between all simulators for all designs (asserted here for
  every benchmark run).

Run: ``pytest benchmarks/bench_table2_simulation.py --benchmark-only -s``

The module is also an executable harness that records the performance
trajectory for the repository::

    python -m benchmarks.bench_table2_simulation --quick --label after

measures the designs under interp and blaze, asserts the traces are
byte-identical, and merges the timings into ``BENCH_sim.json`` under the
given label (``before``/``after``), computing speedup ratios when both
labels are present.
"""

import pytest

from repro.designs import (
    ALL_DESIGNS, DESIGNS, NETLIST_DESIGNS, TABLE2_ORDER, compile_design,
)
from repro.sim import simulate

from .common import (
    BENCH_CYCLES, baseline_from_results, compare_to_baseline, extrapolate,
    format_row, merge_bench_json, run_sim_benchmarks, timed_simulation,
)

# Representative subset for --quick runs (CI smoke): covers a dataflow
# filter, a FIFO with memory, the RISC-V core (process-heavy), the
# sorter (compute-bound, where compiled execution dominates), two
# nine-valued variants exercising the packed value representation, and
# a loop-heavy core that now unrolls to the netlist level.
QUICK_DESIGNS = ("gray", "fir", "fifo", "riscv", "sorter",
                 "gray_l", "fir_l", "lzc_l")

#: Four-state designs measured additionally at the netlist level
#: (lowered + technology-mapped): BENCH_sim.json then records what
#: gate-level granularity costs on nine-valued data.
NETLIST_BENCH = tuple(d for d in NETLIST_DESIGNS if d.endswith("_l"))

#: Designs measured under the levelized ahead-of-time compiled netlist
#: engine (``levelized@netlist`` rows): the whole suite — the engine's
#: acceptance target is netlist cost <= 1.5x the behavioural blaze
#: marginal cost, enforced per design by the committed
#: ``netlist_cost_ceilings`` in BENCH_baseline.json.
LEVELIZED_BENCH = tuple(NETLIST_DESIGNS)

BACKENDS = ("interp", "blaze", "cycle")
_PAPER_COLUMNS = {"interp": "Int.", "blaze": "JIT", "cycle": "Comm."}

# The full matrix is expensive under the interpreter; benchmark the
# interpreter on a representative subset and the compiled simulators on
# every design.  (The table test below still measures all cells once.)
_INTERP_SUBSET = ("gray", "lzc", "fifo", "riscv")


def _run(name, backend, cycles):
    module = compile_design(name, cycles=cycles)
    top = DESIGNS[name].top
    result = simulate(module, top, backend=backend)
    assert result.assertion_failures == []
    return result


@pytest.mark.parametrize("name", TABLE2_ORDER)
@pytest.mark.parametrize("backend", ("blaze", "cycle"))
def test_simulation_speed_compiled(benchmark, name, backend):
    cycles = BENCH_CYCLES[name]
    benchmark.extra_info["design"] = name
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["paper_column"] = _PAPER_COLUMNS[backend]
    benchmark.pedantic(
        _run, args=(name, backend, cycles), rounds=3, iterations=1,
        warmup_rounds=1)


@pytest.mark.parametrize("name", _INTERP_SUBSET)
def test_simulation_speed_interpreter(benchmark, name):
    # The RISC-V program needs ~110 cycles to run to completion; the
    # other testbenches self-check incrementally and can be shortened.
    cycles = BENCH_CYCLES[name] if name == "riscv" \
        else max(BENCH_CYCLES[name] // 4, 8)
    benchmark.extra_info["design"] = name
    benchmark.extra_info["cycles"] = cycles
    benchmark.extra_info["paper_column"] = "Int."
    benchmark.pedantic(
        _run, args=(name, "interp", cycles), rounds=2, iterations=1)


def test_print_table2(capsys):
    """Measure every cell and print the Table 2 reproduction.

    Extrapolation to the paper's cycle counts uses the *marginal* cost
    per cycle (two-point slope), so one-time elaboration/compilation
    overhead — which dominates short Python runs but amortizes to zero
    over millions of cycles — does not distort the long-run comparison.
    This mirrors the paper, whose interpreter column is itself
    extrapolated.
    """
    rows = []
    ratios = []
    for name in TABLE2_ORDER:
        design = DESIGNS[name]
        per_cycle = {}
        traces = {}
        for backend in BACKENDS:
            # Trace-equivalence run at the common cycle budget.
            _, result = timed_simulation(name, backend, BENCH_CYCLES[name])
            traces[backend] = result.trace
            # Timing runs: grow until long enough to time reliably.
            short = BENCH_CYCLES[name]
            t_short, _ = timed_simulation(name, backend, short)
            while t_short < 0.05 and short < 100_000:
                short *= 4
                t_short, _ = timed_simulation(name, backend, short)
            long = short * 3
            t_short = min(t_short,
                          timed_simulation(name, backend, short)[0])
            t_long = min(timed_simulation(name, backend, long)[0]
                         for _ in range(2))
            slope = (t_long - t_short) / (long - short)
            if slope <= 0:  # timing noise: fall back to the mean cost
                slope = t_long / long
            per_cycle[backend] = slope
        # The paper: "traces match between the two simulators for all
        # designs" — here across all three.
        assert traces["interp"].differences(traces["blaze"]) == []
        assert traces["interp"].differences(traces["cycle"]) == []
        target = design.paper_cycles
        jit_vs_comm = per_cycle["cycle"] / per_cycle["blaze"]
        ratios.append(jit_vs_comm)
        rows.append((
            design.paper_name,
            design.sv_loc(short),
            f"{target/1e6:.1f}M",
            f"{per_cycle['interp'] * target:.0f}",
            f"{per_cycle['blaze'] * target:.0f}",
            f"{per_cycle['cycle'] * target:.0f}",
            f"{per_cycle['interp'] / per_cycle['blaze']:.1f}",
            f"{jit_vs_comm:.2f}",
        ))
    with capsys.disabled():
        print()
        print("Table 2 — Simulation performance "
              "(marginal cost extrapolated to the paper's cycle counts)")
        header = ("Design", "LoC", "Cycles", "Int.[s]", "JIT[s]",
                  "Comm.[s]", "Int/JIT", "Comm/JIT")
        widths = [16, 5, 7, 9, 8, 8, 8, 9]
        print(format_row(header, widths))
        print("-" * (sum(widths) + 2 * len(widths)))
        for row in rows:
            print(format_row(row, widths))
        print("\nTraces match across interp/blaze/cycle for all designs.")
        print(f"Comm/JIT range: {min(ratios):.2f}x – {max(ratios):.2f}x "
              f"(paper: 0.2x – 2.4x)")


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        prog="bench_table2_simulation",
        description="Record simulation timings into BENCH_sim.json")
    parser.add_argument("--quick", action="store_true",
                        help="benchmark the representative subset only")
    parser.add_argument("--designs", nargs="*", metavar="NAME",
                        help="explicit design list (default: table order)")
    parser.add_argument("--label", default="after",
                        choices=("before", "after"),
                        help="label to file the measurements under")
    parser.add_argument("--out", default="BENCH_sim.json",
                        help="output JSON path (merged, not overwritten)")
    parser.add_argument("--runs", type=int, default=1,
                        help="timing repetitions per point (min is kept)")
    parser.add_argument("--no-netlist", action="store_true",
                        help="skip the netlist-level four-state rows")
    parser.add_argument("--no-batch", action="store_true",
                        help="skip the K-lane batched blaze rows")
    parser.add_argument("--batch-lanes", type=int, nargs="*",
                        default=(1, 4, 16), metavar="K",
                        help="lane counts for the batched rows "
                             "(default: 1 4 16)")
    parser.add_argument("--compare", metavar="BASELINE",
                        help="compare marginal us/cycle against a "
                             "committed baseline JSON; exit 1 when any "
                             "engine regresses beyond --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed relative regression for --compare "
                             "(default 0.25 = 25%%)")
    parser.add_argument("--no-normalize", action="store_true",
                        help="with --compare: do not cancel the uniform "
                             "machine-speed shift before gating")
    parser.add_argument("--write-baseline", metavar="PATH",
                        help="write the measurements as a new committed "
                             "baseline JSON")
    args = parser.parse_args(argv)

    if args.designs:
        unknown = [d for d in args.designs if d not in DESIGNS]
        if unknown:
            parser.error(f"unknown designs: {', '.join(unknown)}")
        designs = args.designs
    elif args.quick:
        designs = QUICK_DESIGNS
    else:
        designs = ALL_DESIGNS

    netlist_designs = () if args.no_netlist else \
        tuple(d for d in designs if d in NETLIST_BENCH)
    levelized_designs = () if args.no_netlist else \
        tuple(d for d in designs if d in LEVELIZED_BENCH)
    batch_designs = () if args.no_batch else tuple(designs)
    results = run_sim_benchmarks(designs, runs=args.runs,
                                 netlist_designs=netlist_designs,
                                 batch_designs=batch_designs,
                                 batch_lanes=tuple(args.batch_lanes),
                                 levelized_designs=levelized_designs)
    import platform

    doc = merge_bench_json(
        args.out, args.label, results,
        meta={"python": platform.python_version(),
              "designs": list(designs)})
    widths = [16, 8, 12, 12, 12]
    print(format_row(("Design", "Engine", "cycles", "wall[ms]",
                      "marg[us/cy]"), widths))
    for name in designs:
        for engine, m in results[name]["backends"].items():
            print(format_row(
                (name, engine, m["cycles"], f"{m['wall_s']*1e3:.1f}",
                 f"{m['per_cycle_us']:.1f}"), widths))
    for name in designs:
        speedup = doc["designs"][name].get("speedup", {})
        if speedup:
            print(f"{name}: " + ", ".join(
                f"{k} {v:.2f}x" for k, v in sorted(speedup.items())))
    print(f"wrote {args.out} [{args.label}] — traces identical across "
          "engines for all measured designs")

    if args.write_baseline:
        import json

        baseline = baseline_from_results(
            results, meta={"python": platform.python_version(),
                           "runs": args.runs,
                           "designs": list(designs)})
        with open(args.write_baseline, "w") as fh:
            json.dump(baseline, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote baseline {args.write_baseline}")

    if args.compare:
        import json

        with open(args.compare) as fh:
            baseline = json.load(fh)
        regressions, lines = compare_to_baseline(
            results, baseline, tolerance=args.tolerance,
            normalize=not args.no_normalize)
        print(f"bench-regression gate vs {args.compare} "
              f"(tolerance {args.tolerance:.0%}):")
        for line in lines:
            print(line)
        if regressions:
            print(f"FAIL: {len(regressions)} cell(s) regressed beyond "
                  f"{args.tolerance:.0%}:")
            for name, engine, rel in regressions:
                print(f"  {name}/{engine}: {rel:.2f}x")
            return 1
        print("gate passed: no engine regressed beyond the tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
