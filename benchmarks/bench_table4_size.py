"""Table 4: size efficiency of the representations.

Paper columns per design: SystemVerilog source (kB), LLHD text (kB),
bitcode (kB, estimated in the paper — *measured* here, since this
reproduction implements the bitcode for real), and in-memory size (kB).

Reproduced shape claims:

* unoptimized LLHD text is several times larger than the SV source;
* bitcode shrinks the text severalfold, back to the order of the source;
* in-memory size is roughly an order of magnitude above the text;
* all sizes scale with design complexity (RISC-V core largest).

Run: ``pytest benchmarks/bench_table4_size.py --benchmark-only -s``
"""

import pytest

from repro.designs import DESIGNS, TABLE2_ORDER, compile_design
from repro.ir import print_module
from repro.ir.bitcode import read_module, write_module
from repro.ir.memsize import module_size

from .common import format_row

# Size measurement uses fixed small testbench cycle budgets; the design
# code itself (what Table 4 measures) is cycle-independent.
_CYCLES = 16


def _sizes(name):
    design = DESIGNS[name]
    sv = len(design.source(_CYCLES).encode())
    module = compile_design(name, cycles=_CYCLES)
    text = len(print_module(module).encode())
    bitcode = len(write_module(module))
    in_mem = module_size(module)
    return sv, text, bitcode, in_mem


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_size_measurement(benchmark, name):
    sv, text, bitcode, in_mem = benchmark(_sizes, name)
    benchmark.extra_info.update(
        design=name, sv_bytes=sv, text_bytes=text,
        bitcode_bytes=bitcode, in_memory_bytes=in_mem)
    # Shape assertions from the paper's discussion (section 6.3):
    assert text > sv, "LLHD text should exceed the SV source"
    assert bitcode < text / 2, "bitcode should be far smaller than text"
    assert in_mem > text, "in-memory exceeds the text size"


def test_bitcode_roundtrip_all_designs():
    for name in TABLE2_ORDER:
        module = compile_design(name, cycles=_CYCLES)
        restored = read_module(write_module(module))
        assert print_module(restored) == print_module(module), name


def test_print_table4(capsys):
    rows = []
    for name in TABLE2_ORDER:
        sv, text, bitcode, in_mem = _sizes(name)
        rows.append((
            DESIGNS[name].paper_name,
            f"{sv/1024:.1f}",
            f"{text/1024:.1f}",
            f"{bitcode/1024:.1f}",
            f"{in_mem/1024:.1f}",
        ))
    with capsys.disabled():
        print()
        print("Table 4 — Size efficiency [kB] "
              "(bitcode measured, not estimated)")
        header = ("Design", "SV", "Text", "Bitcode", "In-Mem.")
        widths = [16, 7, 7, 8, 9]
        print(format_row(header, widths))
        print("-" * (sum(widths) + 2 * len(widths)))
        for row in rows:
            print(format_row(row, widths))
