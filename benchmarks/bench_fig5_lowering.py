"""Figure 5: end-to-end lowering of the accumulator from Behavioural to
Structural LLHD, printing the IR after every stage the figure shows and
asserting its structural properties (TR counts, drive conditions, phi→mux,
reg inference, the final flattened @acc entity).

Run: ``pytest benchmarks/bench_fig5_lowering.py --benchmark-only -s``
"""

import pytest

from repro.analysis import TemporalRegions
from repro.ir import STRUCTURAL, parse_module, print_module, verify_module
from repro.passes import (
    cleanup, deseq, ecm, forward_signals, inline_entity_insts,
    lower_to_structural, process_lowering, simplify_reg_feedback, tcfe, tcm,
)

BEHAVIOURAL = """
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
event:
  %dp = prb i32$ %d
  %delay = const time 1ns
  drv i32$ %q, %dp after %delay
  br %init
}
proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
entry:
  %qp = prb i32$ %q
  %enp = prb i1$ %en
  %delay = const time 2ns
  drv i32$ %d, %qp after %delay
  br %enp, %final, %enabled
enabled:
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %d, %sum after %delay
  br %final
final:
  wait %entry for %q, %x, %en
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  %qi = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %qi)
  inst @acc_comb (i32$ %qi, i32$ %x, i1$ %en) -> (i32$ %d)
  %qip = prb i32$ %qi
  %t0 = const time 0s
  drv i32$ %q, %qip after %t0
}
"""


def _full_lowering():
    module = parse_module(BEHAVIOURAL)
    lower_to_structural(module)
    acc = module.get("acc")
    inline_entity_insts(module, acc)
    module.remove("acc_ff")
    module.remove("acc_comb")
    cleanup(acc)
    forward_signals(acc)
    cleanup(acc)
    simplify_reg_feedback(acc)
    cleanup(acc)
    return module


def test_lowering_benchmark(benchmark):
    module = benchmark(_full_lowering)
    verify_module(module, level=STRUCTURAL)


def test_print_figure5_stages(capsys):
    module = parse_module(BEHAVIOURAL)
    stages = []

    comb = module.get("acc_comb")
    ff = module.get("acc_ff")
    stages.append(("input (Behavioural LLHD)", print_module(module)))

    for unit in (comb, ff):
        ecm.run(unit)
        cleanup(unit)
    assert TemporalRegions(comb).count == 1   # Figure 5a
    assert TemporalRegions(ff).count == 2     # Figure 5b
    stages.append(("after CF/DCE/CSE/IS/ECM (Fig. 5 a,b)",
                   print_module(module)))

    for unit in (comb, ff):
        tcm.run(unit)
        cleanup(unit)
    drv_ff = next(i for i in ff.instructions() if i.opcode == "drv")
    assert drv_ff.drv_condition() is not None          # Figure 5d
    drvs_comb = [i for i in comb.instructions() if i.opcode == "drv"]
    assert len(drvs_comb) == 1                         # coalesced (5f/g)
    assert drvs_comb[0].drv_value().opcode == "mux"    # Figure 5g
    stages.append(("after TCM (Fig. 5 c-g)", print_module(module)))

    for unit in (comb, ff):
        tcfe.run(unit)
        cleanup(unit)
    assert len(comb.blocks) == 1
    assert len(ff.blocks) == 2
    stages.append(("after TCFE", print_module(module)))

    assert process_lowering.can_lower(comb)
    process_lowering.lower_process(module, comb)       # Figure 5h
    assert deseq.desequentialize(module, ff) is not None  # Figure 5k
    stages.append(("after PL + Deseq (Fig. 5 h,k)", print_module(module)))

    acc = module.get("acc")
    inline_entity_insts(module, acc)
    module.remove("acc_ff")
    module.remove("acc_comb")
    cleanup(acc)
    forward_signals(acc)
    cleanup(acc)
    simplify_reg_feedback(acc)
    cleanup(acc)
    verify_module(module, level=STRUCTURAL)
    final_text = print_module(module)
    stages.append(("after Inline/IS — final Structural LLHD (Fig. 5 m)",
                   final_text))

    # The paper's final form: a single reg storing the gated sum.
    regs = [i for i in acc.body if i.opcode == "reg"]
    assert len(regs) == 1
    trigger = next(regs[0].reg_triggers())
    assert trigger["mode"] == "rise"
    assert trigger["value"].opcode == "add"
    assert trigger["cond"] is not None

    with capsys.disabled():
        print()
        print("Figure 5 — lowering stages of the accumulator")
        for title, text in stages:
            print(f"\n=== {title} ===")
            print(text)
