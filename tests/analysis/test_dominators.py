"""Dominator tree: checked against brute-force path enumeration on random
CFGs (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.analysis import DominatorTree, TemporalRegions, reverse_postorder
from repro.ir import Builder, Function, int_type


def _build_cfg(n_blocks, edges):
    """A function whose CFG has the given edges (i -> [targets])."""
    func = Function("f", [int_type(1)], ["c"], int_type(1))
    blocks = [func.create_block(f"b{i}") for i in range(n_blocks)]
    cond = None
    for i, block in enumerate(blocks):
        b = Builder.at_end(block)
        targets = edges.get(i, [])
        if not targets:
            if cond is None:
                cond = func.args[0]
            b.ret(func.args[0])
        elif len(targets) == 1:
            b.br(blocks[targets[0]])
        else:
            b.br_cond(func.args[0], blocks[targets[0]],
                      blocks[targets[1]])
    return func, blocks


def _all_paths_dominates(blocks, edges, a, b):
    """Brute force: a dominates b iff every path entry->b passes a."""
    if a == b:
        return True
    # DFS from entry avoiding `a`: if we can reach b, a does not dominate.
    seen = {a}
    stack = [0]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        if node == b:
            return False
        for succ in edges.get(node, []):
            stack.append(succ)
    return True


@st.composite
def random_cfg(draw):
    n = draw(st.integers(2, 8))
    edges = {}
    for i in range(n):
        fanout = draw(st.integers(0, 2))
        if i < n - 1 and fanout == 0 and i == 0:
            fanout = 1  # entry must reach something
        targets = draw(st.lists(st.integers(0, n - 1), min_size=fanout,
                                max_size=fanout, unique=True))
        if targets:
            edges[i] = targets
    # Ensure all blocks have some chance of being reachable.
    return n, edges


@given(random_cfg())
@settings(max_examples=60, deadline=None)
def test_dominates_matches_bruteforce(cfg):
    n, edges = cfg
    func, blocks = _build_cfg(n, edges)
    domtree = DominatorTree(func)
    reachable = {i for i, b in enumerate(blocks)
                 if any(o is b for o in domtree.order)}
    for a in reachable:
        for b in reachable:
            expected = _all_paths_dominates(blocks, edges, a, b)
            assert domtree.dominates(blocks[a], blocks[b]) == expected, \
                (a, b, edges)


@given(random_cfg())
@settings(max_examples=40, deadline=None)
def test_entry_dominates_everything_reachable(cfg):
    n, edges = cfg
    func, blocks = _build_cfg(n, edges)
    domtree = DominatorTree(func)
    for block in domtree.order:
        assert domtree.dominates(blocks[0], block)


@given(random_cfg())
@settings(max_examples=40, deadline=None)
def test_common_dominator_is_dominator_of_both(cfg):
    n, edges = cfg
    func, blocks = _build_cfg(n, edges)
    domtree = DominatorTree(func)
    order = domtree.order
    for a in order:
        for b in order:
            common = domtree.common_dominator(a, b)
            assert common is not None
            assert domtree.dominates(common, a)
            assert domtree.dominates(common, b)


def test_diamond_dominators():
    func, blocks = _build_cfg(4, {0: [1, 2], 1: [3], 2: [3]})
    domtree = DominatorTree(func)
    assert domtree.immediate_dominator(blocks[3]) is blocks[0]
    assert domtree.immediate_dominator(blocks[1]) is blocks[0]
    assert not domtree.dominates(blocks[1], blocks[3])


def test_dominance_frontier_of_diamond():
    func, blocks = _build_cfg(4, {0: [1, 2], 1: [3], 2: [3]})
    domtree = DominatorTree(func)
    frontier = domtree.dominance_frontier()
    assert frontier[id(blocks[1])] == [blocks[3]]
    assert frontier[id(blocks[2])] == [blocks[3]]
    assert frontier[id(blocks[0])] == []
