"""The bench-regression gate: baseline format and comparison logic."""

import json
import pathlib

from benchmarks.common import baseline_from_results, compare_to_baseline

RESULTS = {
    "gray": {"backends": {"interp": {"per_cycle_us": 100.0},
                          "blaze": {"per_cycle_us": 50.0}}},
    "fir": {"backends": {"interp": {"per_cycle_us": 200.0},
                         "blaze": {"per_cycle_us": 80.0}}},
}


def test_regression_beyond_tolerance_is_flagged():
    baseline = {"designs": {"gray": {"interp": 50.0, "blaze": 50.0},
                            "fir": {"interp": 200.0, "blaze": 80.0}}}
    regressions, lines = compare_to_baseline(RESULTS, baseline,
                                             tolerance=0.25)
    assert [(n, e) for n, e, _ in regressions] == [("gray", "interp")]
    assert any("REGRESSION" in line for line in lines)


def test_uniform_machine_shift_cancels():
    """A CI runner uniformly 2x slower than the baseline machine must
    not fire the gate: the geometric-mean normalization absorbs it."""
    half_speed = {"designs": {"gray": {"interp": 50.0, "blaze": 25.0},
                              "fir": {"interp": 100.0, "blaze": 40.0}}}
    regressions, _ = compare_to_baseline(RESULTS, half_speed,
                                         tolerance=0.25)
    assert regressions == []


def test_raw_comparison_without_normalization():
    half_speed = {"designs": {"gray": {"interp": 50.0, "blaze": 25.0},
                              "fir": {"interp": 100.0, "blaze": 40.0}}}
    regressions, _ = compare_to_baseline(RESULTS, half_speed,
                                         tolerance=0.25, normalize=False)
    assert len(regressions) == 4  # every cell is 2x raw


def test_empty_overlap_is_not_a_failure():
    regressions, lines = compare_to_baseline(RESULTS, {"designs": {}})
    assert regressions == []
    assert "no overlapping cells" in lines[0]


def test_baseline_roundtrip_from_results():
    doc = baseline_from_results(RESULTS, meta={"runs": 3})
    assert doc["designs"]["gray"]["blaze"] == 50.0
    assert doc["meta"]["runs"] == 3
    regressions, _ = compare_to_baseline(RESULTS, doc)
    assert regressions == []  # identical run vs its own baseline


def test_committed_baseline_covers_the_quick_subset():
    """CI runs the gate in --quick mode: every quick design × engine
    must be present in the committed BENCH_baseline.json."""
    from benchmarks.bench_table2_simulation import QUICK_DESIGNS

    path = pathlib.Path(__file__).resolve().parents[2] / \
        "BENCH_baseline.json"
    doc = json.loads(path.read_text())
    for name in QUICK_DESIGNS:
        assert name in doc["designs"], name
        for engine in ("interp", "blaze"):
            assert doc["designs"][name].get(engine), (name, engine)
