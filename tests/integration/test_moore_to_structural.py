"""Integration: SystemVerilog → (Moore) → Behavioural LLHD → (§4 pipeline)
→ Structural LLHD, with simulation agreement before and after.

This is the paper's Figure 1 "tomorrow" flow, end to end.
"""

import pytest

from repro.ir import STRUCTURAL, is_at_level, verify_module
from repro.moore import compile_sv
from repro.passes import LoweringRejection, lower_to_structural
from repro.sim import simulate

ACC_SV = """
module acc (input clk, input [31:0] x, input en, output [31:0] q);
  bit [31:0] d;
  always_ff @(posedge clk) q <= #1ns d;
  always_comb begin
    d = q;
    if (en) d = q + x;
  end
endmodule
"""

TB_SV = """
module acc_tb;
  bit clk, en;
  bit [31:0] x, q;
  acc i_dut (.*);
  initial begin
    automatic bit [31:0] i = 0;
    en <= #2ns 1;
    do begin
      x <= #2ns i;
      clk <= #1ns 1;
      clk <= #2ns 0;
      #2ns;
    end while (i++ < 40);
  end
endmodule
"""


def test_figure3_accumulator_compiles():
    """The paper's Figure 3 source (testbench + accumulator), verbatim
    except for the assertion (which the paper marks 'not yet implemented')
    and a shorter loop bound."""
    module = compile_sv(ACC_SV + TB_SV)
    verify_module(module)
    assert module.get("acc").is_entity
    assert module.get("acc_tb").is_entity


def test_figure3_testbench_simulates():
    module = compile_sv(ACC_SV + TB_SV)
    result = simulate(module, "acc_tb")
    history = result.trace.history("acc_tb.q")
    # The accumulator accumulates 0+1+2+... with pipeline delays; it must
    # reach a nonzero, growing value.
    values = [v for _, v in history]
    assert values[-1] > 0
    assert values == sorted(values), "accumulator output must be monotonic"


def test_acc_lowers_to_structural():
    module = compile_sv(ACC_SV)
    report = lower_to_structural(module)
    assert is_at_level(module, STRUCTURAL)
    # One process lowered by PL (always_comb), one by Deseq (always_ff).
    assert len(report.lowered_by_pl) == 1
    assert len(report.lowered_by_deseq) == 1
    # The flip-flop became a reg with a rising-edge trigger.
    text_units = {u.name: u for u in module}
    regs = [i for u in module for i in u.instructions()
            if i.opcode == "reg"]
    assert len(regs) == 1
    assert next(regs[0].reg_triggers())["mode"] == "rise"


def test_lowered_acc_simulates_identically():
    behavioural = compile_sv(ACC_SV + TB_SV)
    lowered = compile_sv(ACC_SV + TB_SV)
    # Lower only the synthesizable design; the testbench stays behavioural
    # (the paper's flow: testbenches remain in Behavioural LLHD).
    for proc in list(lowered.processes()):
        if not proc.name.startswith("acc_tb"):
            from repro.passes.pipeline import _prepare_process

            _prepare_process(proc, lowered)
    from repro.passes import deseq, process_lowering

    for proc in list(lowered.processes()):
        if proc.name.startswith("acc_tb"):
            continue
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(lowered, proc)
        else:
            assert deseq.desequentialize(lowered, proc) is not None
    verify_module(lowered)

    ref = simulate(behavioural, "acc_tb")
    low = simulate(lowered, "acc_tb")
    shared = ["acc_tb.q", "acc_tb.x", "acc_tb.clk", "acc_tb.en"]
    assert ref.trace.differences(low.trace, signals=shared) == []


def test_testbench_process_is_rejected_by_lowering():
    """Testbenches are not synthesizable: the pipeline must say so."""
    module = compile_sv(ACC_SV + TB_SV)
    with pytest.raises(LoweringRejection):
        lower_to_structural(module)


SEQUENTIAL_WITH_RESET = """
module dff_rst (input clk, input rst_n, input [7:0] d,
                output logic [7:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n)
      q <= 8'd0;
    else
      q <= d;
  end
endmodule
"""


def test_async_reset_ff_desequentializes():
    module = compile_sv(SEQUENTIAL_WITH_RESET)
    report = lower_to_structural(module)
    assert len(report.lowered_by_deseq) == 1
    regs = [i for u in module for i in u.instructions()
            if i.opcode == "reg"]
    assert len(regs) == 1
    modes = sorted(t["mode"] for t in regs[0].reg_triggers())
    # Rising-edge clock triggers (reset and data arms) plus a
    # falling-edge asynchronous reset trigger.
    assert "rise" in modes
    assert "fall" in modes
    # The falling-reset trigger stores the (specialized) constant zero.
    fall = next(t for t in regs[0].reg_triggers() if t["mode"] == "fall")
    assert fall["value"].opcode == "const"
    assert fall["value"].attrs["value"] == 0
