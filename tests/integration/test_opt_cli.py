"""Tests for the ``python -m repro.opt`` command-line driver."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.opt import main

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"
ACC = EXAMPLES / "acc.llhd"


def test_example_llhd_file_exists():
    assert ACC.is_file()


def test_lower_pipeline_prints_structural_ir(capsys):
    assert main([str(ACC), "-p", "lower"]) == 0
    out = capsys.readouterr().out
    assert "entity @acc_ff" in out
    assert "reg i32$" in out
    assert "proc @" not in out  # everything lowered


def test_stats_table_on_stderr(capsys):
    assert main([str(ACC), "-p", "lower", "-stats"]) == 0
    err = capsys.readouterr().err
    for name in ("lower", "cf", "cse", "ecm", "tcm", "tcfe",
                 "analysis cache"):
        assert name in err


def test_custom_pipeline_spec(capsys):
    assert main([str(ACC), "-p",
                 "fixpoint(cf,instsimplify,cse,dce)", "-stats"]) == 0
    captured = capsys.readouterr()
    assert "proc @acc_ff" in captured.out  # not lowered, only cleaned
    assert "cse" in captured.err


def test_quiet_suppresses_ir(capsys):
    assert main([str(ACC), "-p", "cleanup", "-q"]) == 0
    assert capsys.readouterr().out == ""


def test_output_file(tmp_path, capsys):
    target = tmp_path / "out.llhd"
    assert main([str(ACC), "-p", "lower", "-o", str(target)]) == 0
    assert "entity @acc_ff" in target.read_text()
    assert capsys.readouterr().out == ""


def test_list_passes(capsys):
    assert main(["--list-passes"]) == 0
    out = capsys.readouterr().out
    for name in ("cf", "tcm", "deseq", "lower", "cleanup", "prepare"):
        assert name in out


def test_bad_pipeline_spec_exits_2(capsys):
    assert main([str(ACC), "-p", "no-such-pass"]) == 2
    assert "bad pipeline spec" in capsys.readouterr().err


def test_parse_error_exits_1(tmp_path, capsys):
    bad = tmp_path / "bad.llhd"
    bad.write_text("proc @oops (")
    assert main([str(bad)]) == 1
    assert "parse error" in capsys.readouterr().err


def test_rejections_reported_not_fatal(tmp_path, capsys):
    testbench = tmp_path / "tb.llhd"
    testbench.write_text("""
proc @tb (i1$ %clk) -> (i32$ %x) {
entry:
  %zero = const i32 0
  %del = const time 2ns
  drv i32$ %x, %zero after %del
  wait %done for %del
done:
  halt
}
""")
    assert main([str(testbench), "-p", "lower"]) == 0
    captured = capsys.readouterr()
    assert "not lowered" in captured.err
    assert "@tb" in captured.err
    assert "proc @tb" in captured.out  # stays behavioural in the output


def test_module_entry_point_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.opt", str(ACC), "-p", "lower",
         "-stats"],
        capture_output=True, text=True, timeout=120,
        cwd=EXAMPLES.parent,
        env={"PYTHONPATH": str(EXAMPLES.parent / "src"), "PATH": ""},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "entity @acc_ff" in result.stdout
    assert "pass statistics" in result.stderr
