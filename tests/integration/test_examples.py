"""The runnable examples stay green (they are part of the public docs)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    p for p in pathlib.Path(__file__).resolve().parents[2].joinpath(
        "examples").glob("*.py")
    if not p.name.startswith("_"))  # _bootstrap.py is a helper, not a demo


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True,
        timeout=300)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print their results"
