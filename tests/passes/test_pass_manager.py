"""Unit tests for the pass manager: pipeline-spec parsing, fixpoint
groups, analysis caching and invalidation, and instrumentation."""

import pytest

from repro.analysis import AnalysisManager
from repro.ir import parse_module, verify_module
from repro.passes import (
    PASS_REGISTRY, PIPELINES, FixpointNode, PassError, PassManager,
    PassNode, UnitPass, parse_pipeline, register_pass, register_pipeline,
)


def _func(body, sig="() i32"):
    return parse_module(f"func @f {sig} {{\n{body}\n}}").get("f")


FOLDABLE = """
entry:
  %two = const i32 2
  %three = const i32 3
  %sum = add i32 %two, %three
  %dead = mul i32 %sum, %two
  ret i32 %sum
"""


# -- spec parsing -------------------------------------------------------------


def test_parse_simple_list():
    nodes = parse_pipeline("cf,dce,cse")
    assert [n.name for n in nodes] == ["cf", "dce", "cse"]
    assert all(isinstance(n, PassNode) for n in nodes)


def test_parse_fixpoint_group():
    nodes = parse_pipeline("inline,fixpoint(cf,instsimplify,cse,dce),ecm")
    assert isinstance(nodes[1], FixpointNode)
    assert [c.name for c in nodes[1].children] == \
        ["cf", "instsimplify", "cse", "dce"]
    assert nodes[0].name == "inline" and nodes[2].name == "ecm"


def test_parse_nested_fixpoint():
    nodes = parse_pipeline("fixpoint(cf,fixpoint(cse,dce))")
    assert isinstance(nodes[0], FixpointNode)
    assert isinstance(nodes[0].children[1], FixpointNode)


def test_parse_whitespace_tolerant():
    nodes = parse_pipeline(" cf , fixpoint( cse , dce ) ")
    assert nodes[0].name == "cf"
    assert isinstance(nodes[1], FixpointNode)


def test_parse_named_pipeline_alias_expands():
    nodes = parse_pipeline("cleanup")
    assert isinstance(nodes[0], FixpointNode)
    assert "cleanup" in PIPELINES and "prepare" in PIPELINES


def test_parse_unknown_pass_is_error():
    with pytest.raises(PassError, match="unknown pass"):
        parse_pipeline("cf,not-a-pass")


def test_parse_empty_fixpoint_is_error():
    with pytest.raises(PassError, match="empty fixpoint"):
        parse_pipeline("fixpoint()")


def test_parse_unbalanced_is_error():
    with pytest.raises(PassError):
        parse_pipeline("fixpoint(cf")
    with pytest.raises(PassError):
        parse_pipeline("cf)")


def test_parse_unknown_combinator_is_error():
    with pytest.raises(PassError, match="combinator"):
        parse_pipeline("loop(cf)")


def test_registry_has_the_paper_passes():
    for name in ("cf", "instsimplify", "cse", "dce", "inline", "unroll",
                 "mem2reg", "ecm", "tcm", "tcfe", "pl", "deseq", "lower"):
        assert name in PASS_REGISTRY, name


# -- running ------------------------------------------------------------------


def test_run_single_pass_on_unit():
    unit = _func(FOLDABLE)
    pm = PassManager("cf")
    assert pm.run(unit)
    ret = unit.entry.terminator
    assert ret.operands[0].opcode == "const"
    assert ret.operands[0].attrs["value"] == 5


def test_run_fixpoint_reaches_cleanup_fixpoint():
    unit = _func(FOLDABLE)
    pm = PassManager("fixpoint(cf,instsimplify,cse,dce)")
    assert pm.run(unit)
    # Everything folds to a single const feeding the ret.
    opcodes = [i.opcode for i in unit.entry.instructions]
    assert opcodes == ["const", "ret"]
    verify_module(unit.module)


def test_fixpoint_changed_flags_skip_clean_passes():
    unit = _func(FOLDABLE)
    pm = PassManager()
    pm.run_spec("fixpoint(cf,instsimplify,cse,dce)", unit)
    first = {n: r.runs for n, r in pm.records.items()}
    # A second run over the already-clean unit: every pass runs exactly
    # once more (initial dirty flags), then the group converges.
    pm.run_spec("fixpoint(cf,instsimplify,cse,dce)", unit)
    for name, record in pm.records.items():
        assert record.runs == first[name] + 1, name


def test_run_spec_on_module_applies_unit_passes_to_all_units():
    module = parse_module("""
func @f () i32 {
entry:
  %a = const i32 1
  %b = add i32 %a, %a
  ret i32 %b
}
func @g () i32 {
entry:
  %a = const i32 3
  %b = mul i32 %a, %a
  ret i32 %b
}
""")
    pm = PassManager("cf")
    assert pm.run(module)
    for name in ("f", "g"):
        ret = module.get(name).entry.terminator
        assert ret.operands[0].opcode == "const"


def test_module_pass_on_unit_is_an_error():
    unit = _func(FOLDABLE)
    pm = PassManager("deseq")
    with pytest.raises(PassError, match="module pass"):
        pm.run(unit)


def test_single_always_changing_pass_converges_without_self_redirty():
    # A lone child never re-dirties itself: passes are expected to be
    # internally fixpointed, so the group runs it once and stops.
    @register_pass
    class GreedyPass(UnitPass):
        name = "test-greedy"
        preserves = frozenset()

        def run_on_unit(self, unit, am):
            return True

    try:
        pm = PassManager("fixpoint(test-greedy)")
        pm.run(_func(FOLDABLE))
        assert pm.records["test-greedy"].runs == 1
    finally:
        del PASS_REGISTRY["test-greedy"]


def test_nonconverging_fixpoint_is_detected():
    # Two passes that keep re-dirtying each other must hit the round cap.
    @register_pass
    class PingPass(UnitPass):
        name = "test-ping"
        preserves = frozenset()

        def run_on_unit(self, unit, am):
            return True

    @register_pass
    class PongPass(UnitPass):
        name = "test-pong"
        preserves = frozenset()

        def run_on_unit(self, unit, am):
            return True

    try:
        unit = _func(FOLDABLE)
        pm = PassManager("fixpoint(test-ping,test-pong)")
        with pytest.raises(PassError, match="did not converge"):
            pm.run(unit)
    finally:
        del PASS_REGISTRY["test-ping"]
        del PASS_REGISTRY["test-pong"]


# -- analysis caching ---------------------------------------------------------


BRANCHY = """
entry:
  %c = const i1 1
  br %c, %left, %right
left:
  %x = const i32 1
  ret i32 %x
right:
  %y = const i32 2
  ret i32 %y
"""


def test_analysis_manager_caches_per_unit():
    unit = _func(BRANCHY)
    am = AnalysisManager()
    first = am.get("domtree", unit)
    second = am.get("domtree", unit)
    assert first is second
    assert am.hits == 1 and am.misses == 1


def test_analysis_manager_invalidate_preserved():
    unit = _func(BRANCHY)
    am = AnalysisManager()
    dom = am.get("domtree", unit)
    rpo = am.get("rpo", unit)
    am.invalidate(unit, preserved={"rpo"})
    assert am.get("rpo", unit) is rpo
    assert am.get("domtree", unit) is not dom


def test_cfg_changing_pass_invalidates_cache():
    unit = _func(BRANCHY)
    pm = PassManager()
    dom_before = pm.am.get("domtree", unit)
    pm.run_spec("cf", unit)  # folds the branch, prunes a block
    assert len(unit.blocks) == 2
    assert pm.am.cached("domtree", unit) is None
    assert pm.am.get("domtree", unit) is not dom_before


def test_preserving_pass_keeps_cache():
    # ECM moves instructions but never blocks: cached analyses survive.
    unit = parse_module("""
proc @p (i1$ %a) -> (i1$ %q) {
entry:
  br %body
body:
  %one = const i1 1
  %del = const time 1ns
  drv i1$ %q, %one after %del
  wait %entry for %a
}
""").get("p")
    pm = PassManager()
    dom_before = pm.am.get("domtree", unit)
    changed = pm.run_spec("ecm", unit)
    assert changed  # the const hoists into the entry block
    assert pm.am.cached("domtree", unit) is dom_before


def test_forgotten_units_drop_from_cache():
    unit = _func(BRANCHY)
    am = AnalysisManager()
    am.get("domtree", unit)
    am.forget(unit)
    assert am.cached("domtree", unit) is None


def test_unknown_analysis_is_an_error():
    am = AnalysisManager()
    with pytest.raises(KeyError):
        am.get("no-such-analysis", _func(FOLDABLE))


# -- instrumentation ----------------------------------------------------------


def test_records_track_runs_changed_and_time():
    unit = _func(FOLDABLE)
    pm = PassManager("cf,dce")
    pm.run(unit)
    cf = pm.records["cf"]
    assert cf.runs == 1 and cf.changed == 1 and cf.seconds >= 0.0
    assert cf.statistics.get("folded", 0) >= 1
    dce = pm.records["dce"]
    assert dce.runs == 1 and dce.changed == 1


def test_statistics_table_renders():
    unit = _func(FOLDABLE)
    pm = PassManager("fixpoint(cf,instsimplify,cse,dce)")
    pm.run(unit)
    table = pm.statistics_table()
    for name in ("cf", "instsimplify", "cse", "dce", "analysis cache"):
        assert name in table


def test_verify_each_passes_on_sound_pipeline():
    unit = _func(FOLDABLE)
    pm = PassManager("fixpoint(cf,instsimplify,cse,dce)", verify_each=True)
    pm.run(unit)  # must not raise


def test_verify_each_catches_a_corrupting_pass():
    from repro.ir import VerificationError

    @register_pass
    class CorruptPass(UnitPass):
        name = "test-corrupt"
        preserves = frozenset()

        def run_on_unit(self, unit, am):
            # Drop the terminator: the unit no longer verifies.
            unit.entry.terminator.erase()
            return True

    try:
        unit = _func(FOLDABLE)
        pm = PassManager("test-corrupt", verify_each=True)
        with pytest.raises(VerificationError):
            pm.run(unit)
    finally:
        del PASS_REGISTRY["test-corrupt"]


def test_recursive_pipeline_alias_is_an_error():
    register_pipeline("test-loop-alias", "cf,test-loop-alias")
    try:
        with pytest.raises(PassError, match="recursive"):
            parse_pipeline("test-loop-alias")
    finally:
        del PIPELINES["test-loop-alias"]
