"""Unit tests for CF, DCE, CSE, IS, mem2reg, inline, and unroll."""

from repro.ir import parse_module, print_module, verify_module
from repro.passes import cf, cse, dce, inline_calls, instsimplify, mem2reg
from repro.passes import unroll


def _func(body, sig="(i32 %a, i32 %b) i32"):
    return parse_module(f"func @f {sig} {{\n{body}\n}}").get("f")


def test_constant_folding_arithmetic():
    unit = _func("""
    entry:
      %two = const i32 2
      %three = const i32 3
      %sum = add i32 %two, %three
      %prod = mul i32 %sum, %two
      ret i32 %prod
    """, sig="() i32")
    assert cf.run(unit)
    ret = unit.entry.terminator
    assert ret.operands[0].opcode == "const"
    assert ret.operands[0].attrs["value"] == 10
    verify_module(unit.module)


def test_constant_folding_preserves_division_by_zero():
    unit = _func("""
    entry:
      %one = const i32 1
      %zero = const i32 0
      %q = div i32 %one, %zero
      ret i32 %q
    """, sig="() i32")
    cf.run(unit)
    assert unit.entry.instructions[-2].opcode == "udiv"


def test_branch_folding_removes_dead_block():
    unit = _func("""
    entry:
      %t = const i1 1
      br %t, %dead, %live
    dead:
      %x = const i32 1
      ret i32 %x
    live:
      %y = const i32 2
      ret i32 %y
    """, sig="() i32")
    cf.run(unit)
    assert len(unit.blocks) == 2
    assert {b.name for b in unit.blocks} == {"entry", "live"}


def test_dce_removes_unused_pure_chain():
    unit = _func("""
    entry:
      %dead1 = add i32 %a, %b
      %dead2 = mul i32 %dead1, %dead1
      %live = sub i32 %a, %b
      ret i32 %live
    """)
    assert dce.run(unit)
    ops = [i.opcode for i in unit.entry.instructions]
    assert ops == ["sub", "ret"]


def test_cse_merges_identical_computations():
    unit = _func("""
    entry:
      %x = add i32 %a, %b
      %y = add i32 %a, %b
      %z = add i32 %x, %y
      ret i32 %z
    """)
    assert cse.run(unit)
    adds = [i for i in unit.entry.instructions if i.opcode == "add"]
    assert len(adds) == 2  # %x and the combining add
    assert adds[1].operands[0] is adds[0]
    assert adds[1].operands[1] is adds[0]


def test_cse_respects_dominance():
    unit = _func("""
    entry:
      %c = ult i32 %a, %b
      br %c, %left, %right
    left:
      %x = add i32 %a, %b
      br %join
    right:
      %y = add i32 %a, %b
      br %join
    join:
      %p = phi i32 [%x, %left], [%y, %right]
      ret i32 %p
    """)
    # %x and %y are in sibling blocks: neither dominates the other.
    assert not cse.run(unit)


def test_cse_never_merges_probes():
    module = parse_module("""
    proc @p (i8$ %s) -> (i8$ %o) {
    entry:
      %v1 = prb i8$ %s
      %t = const time 1ns
      wait %next for %t
    next:
      %v2 = prb i8$ %s
      %sum = add i8 %v1, %v2
      drv i8$ %o, %sum after %t
      halt
    }
    """)
    assert not cse.run(module.get("p"))


def test_instsimplify_identities():
    unit = _func("""
    entry:
      %zero = const i32 0
      %x1 = add i32 %a, %zero
      %x2 = xor i32 %x1, %x1
      %x3 = or i32 %x2, %b
      ret i32 %x3
    """)
    assert instsimplify.run(unit)
    dce.run(unit)
    ret = unit.entry.terminator
    # x1 = a; x2 = 0; x3 = 0 | b = b
    assert ret.operands[0] is unit.args[1]


def test_instsimplify_mux_of_array_literal():
    unit = _func("""
    entry:
      %one = const i1 1
      %arr = [i32 %a, %b]
      %r = mux i32 %arr, %one
      ret i32 %r
    """)
    assert instsimplify.run(unit)
    dce.run(unit)
    assert unit.entry.terminator.operands[0] is unit.args[1]


def test_mem2reg_promotes_straightline_var():
    unit = _func("""
    entry:
      %init = const i32 5
      %p = var i32 %init
      %v1 = ld i32* %p
      %sum = add i32 %v1, %a
      st i32* %p, %sum
      %v2 = ld i32* %p
      ret i32 %v2
    """, sig="(i32 %a) i32")
    assert mem2reg.run(unit)
    ops = {i.opcode for i in unit.instructions()}
    assert "var" not in ops and "ld" not in ops and "st" not in ops
    verify_module(unit.module)


def test_mem2reg_inserts_phi_at_join():
    unit = _func("""
    entry:
      %init = const i32 0
      %one = const i32 1
      %p = var i32 %init
      %c = ult i32 %a, %b
      br %c, %no, %yes
    yes:
      st i32* %p, %one
      br %join
    no:
      br %join
    join:
      %v = ld i32* %p
      ret i32 %v
    """)
    assert mem2reg.run(unit)
    join = next(b for b in unit.blocks if b.name == "join")
    phis = join.phis()
    assert len(phis) == 1
    verify_module(unit.module)


def test_mem2reg_loop_variable():
    """The Figure 2 testbench pattern: loop counter in a var."""
    module = parse_module("""
    proc @p () -> (i8$ %o) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %limit = const i8 10
      %t = const time 1ns
      %i = var i8 %zero
      br %loop
    loop:
      %ip = ld i8* %i
      %in = add i8 %ip, %one
      st i8* %i, %in
      wait %check for %t
    check:
      %cont = ult i8 %in, %limit
      br %cont, %end, %loop
    end:
      drv i8$ %o, %in after %t
      halt
    }
    """)
    unit = module.get("p")
    assert mem2reg.run(unit)
    ops = {i.opcode for i in unit.instructions()}
    assert "var" not in ops and "ld" not in ops and "st" not in ops
    loop = next(b for b in unit.blocks if b.name == "loop")
    assert loop.phis(), "loop-carried value needs a phi"
    verify_module(module)


def test_inline_simple_call():
    module = parse_module("""
    func @helper (i32 %x) i32 {
    entry:
      %one = const i32 1
      %r = add i32 %x, %one
      ret i32 %r
    }
    func @main (i32 %v) i32 {
    entry:
      %r = call i32 @helper (i32 %v)
      %r2 = call i32 @helper (i32 %r)
      ret i32 %r2
    }
    """)
    main = module.get("main")
    assert inline_calls(main, module) == 2
    assert not any(i.opcode == "call" for i in main.instructions())
    verify_module(module)


def test_inline_rejects_recursion():
    import pytest

    from repro.passes import InlineError

    module = parse_module("""
    func @rec (i32 %x) i32 {
    entry:
      %r = call i32 @rec (i32 %x)
      ret i32 %r
    }
    """)
    with pytest.raises(InlineError, match="recursive"):
        inline_calls(module.get("rec"), module)


def test_unroll_folds_counted_loop():
    unit = _func("""
    entry:
      %zero = const i32 0
      %one = const i32 1
      %ten = const i32 10
      br %loop
    loop:
      %i = phi i32 [%zero, %entry], [%in, %loop]
      %acc = phi i32 [%zero, %entry], [%accn, %loop]
      %accn = add i32 %acc, %i
      %in = add i32 %i, %one
      %cont = ult i32 %in, %ten
      br %cont, %exit, %loop
    exit:
      ret i32 %accn
    """, sig="() i32")
    assert unroll.run(unit) == 1
    cf.run(unit)
    dce.run(unit)
    from repro.passes import tcfe

    tcfe.run(unit)
    ret = next(i for i in unit.instructions() if i.opcode == "ret")
    assert ret.operands[0].opcode == "const"
    assert ret.operands[0].attrs["value"] == sum(range(10))


def test_unroll_leaves_impure_loops_alone():
    module = parse_module("""
    proc @p () -> (i8$ %o) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %t = const time 1ns
      br %loop
    loop:
      %i = phi i8 [%zero, %entry], [%in, %loop]
      drv i8$ %o, %i after %t
      %in = add i8 %i, %one
      %cont = ult i8 %in, %one
      br %cont, %end, %loop
    end:
      halt
    }
    """)
    assert unroll.run(module.get("p")) == 0
