"""The symbolic loop unroller: edge cases and rejection reporting.

Unrolling is what turns the loop-heavy combinational cores into
straight-line code; these tests pin down its contract:

* loops with non-constant trip counts are *rejected with a recorded
  reason*, never an exception;
* nested counted loops unroll in one pass (the symbolic executor walks
  the concrete path through both levels);
* values escaping the loop into ``drv`` instructions carry the
  last-iteration value;
* ``lN`` induction arithmetic folds exactly like ``iN`` as long as the
  counters stay two-valued;
* side effects in a loop body reject.
"""

import pytest

from repro.ir import parse_module
from repro.moore import compile_sv
from repro.passes import unroll
from repro.passes.manager import PassManager
from repro.passes.pipeline import (
    PREPARE_SPEC, lower_to_structural,
)
from repro.sim import simulate


def _prepare(module):
    pm = PassManager()
    for proc in list(module.processes()):
        pm.run_spec(PREPARE_SPEC, proc)
    return module


def _comb_proc(module, fragment="always_comb"):
    return next(p for p in module.processes() if fragment in p.name)


# -- rejection: non-constant trip counts ---------------------------------------


NON_CONSTANT_TRIP = """
module dut (input logic [7:0] n, output logic [7:0] y);
  always_comb begin
    automatic int i = 0;
    automatic int acc = 0;
    for (i = 0; i < n; i++)
      acc = acc + 3;
    y = acc[7:0];
  end
endmodule
"""


def test_non_constant_trip_count_rejects_with_reason_not_raise():
    module = compile_sv(NON_CONSTANT_TRIP)
    _prepare(module)  # must not raise
    proc = _comb_proc(module)
    reasons = unroll.failure_reasons(proc)
    assert len(reasons) == 1
    assert "not compile-time constant" in reasons[0]


def test_non_constant_trip_count_reason_reaches_the_report():
    module = compile_sv(NON_CONSTANT_TRIP)
    report = lower_to_structural(module, strict=False, verify=False)
    rejected = dict(report.rejected)
    reason = rejected["dut_always_comb_1"]
    assert reason.startswith("unroll:")
    assert "not compile-time constant" in reason
    assert report.design_rejections() == [
        ("dut_always_comb_1", reason)]


def test_run_records_reasons_into_a_caller_list():
    module = compile_sv(NON_CONSTANT_TRIP)
    _prepare(module)
    reasons = []
    unrolled = unroll.run(_comb_proc(module), reasons=reasons)
    assert unrolled == 0
    assert reasons and "not compile-time constant" in reasons[0]


# -- nested loops --------------------------------------------------------------


NESTED = """
module dut (input logic [15:0] x, output logic [7:0] y);
  always_comb begin
    automatic int i = 0;
    automatic int j = 0;
    automatic int acc = 0;
    for (i = 0; i < 4; i++)
      for (j = 0; j < 4; j++)
        if (x[i * 4 + j])
          acc = acc + 1;
    y = acc[7:0];
  end
endmodule

module tb;
  logic [15:0] x;
  logic [7:0] y;
  dut d (.x(x), .y(y));
  initial begin
    x = 16'h0000; #1ns;
    x = 16'hF00F; #1ns;
    x = 16'hFFFF; #1ns;
    x = 16'h8421; #1ns;
  end
endmodule
"""


def test_nested_counted_loops_unroll_and_lower():
    module = compile_sv(NESTED)
    ref = simulate(compile_sv(NESTED), "tb")
    report = lower_to_structural(module, strict=False, verify=False)
    assert report.design_rejections() == []
    low = simulate(module, "tb")
    assert ref.trace.differences(low.trace, signals=["tb.y"]) == []


# -- escaping values feeding drv ----------------------------------------------


ESCAPING = """
module dut (input logic [7:0] x, output logic [7:0] last,
            output logic [7:0] sum);
  always_comb begin
    automatic int i = 0;
    automatic logic [7:0] acc = 8'd0;
    automatic logic [7:0] cur = 8'd0;
    for (i = 0; i < 5; i++) begin
      cur = x + i[7:0];
      acc = acc + cur;
    end
    last = cur;
    sum = acc;
  end
endmodule

module tb;
  logic [7:0] x, last, sum;
  dut d (.x(x), .last(last), .sum(sum));
  initial begin
    x = 8'd0; #1ns;
    x = 8'd7; #1ns;
    x = 8'd200; #1ns;
  end
endmodule
"""


def test_escaping_values_feed_drives_with_last_iteration_values():
    module = compile_sv(ESCAPING)
    ref = simulate(compile_sv(ESCAPING), "tb")
    report = lower_to_structural(module, strict=False, verify=False)
    assert report.design_rejections() == []
    low = simulate(module, "tb")
    assert ref.trace.differences(low.trace,
                                 signals=["tb.last", "tb.sum"]) == []


# -- lN induction variables ----------------------------------------------------


def test_logic_induction_variables_unroll():
    module = compile_sv(NESTED, four_state=True)
    ref = simulate(compile_sv(NESTED, four_state=True), "tb")
    report = lower_to_structural(module, strict=False, verify=False)
    assert report.design_rejections() == []
    low = simulate(module, "tb")
    assert ref.trace.differences(low.trace, signals=["tb.y"]) == []


def test_logic_counted_loop_folds_to_straight_line():
    module = compile_sv(NON_CONSTANT_TRIP.replace("i < n", "i < 6"),
                        four_state=True)
    _prepare(module)
    proc = _comb_proc(module)
    assert unroll.failure_reasons(proc) == []
    # The loop is gone: no block branches backwards anymore.
    assert len(unroll._find_loops(proc)) == 0


# -- direct IR edge cases ------------------------------------------------------


SIDE_EFFECT_LOOP = """
proc @p (i8$ %x) -> (i8$ %y) {
entry:
  %zero = const i8 0
  %one = const i8 1
  %lim = const i8 3
  %t = const time 0s
  br %head
head:
  %i = phi i8 [%zero, %entry], [%next, %head]
  %next = add i8 %i, %one
  drv i8$ %y, %i after %t
  %more = ult i8 %next, %lim
  br %more, %exit, %head
exit:
  wait %entry for %x
}
"""


def test_side_effecting_loop_body_rejects():
    module = parse_module(SIDE_EFFECT_LOOP)
    proc = module.get("p")
    assert unroll.run(proc) == 0
    reasons = unroll.failure_reasons(proc)
    assert len(reasons) == 1
    assert "'drv'" in reasons[0] and "side effects" in reasons[0]


MULTI_ENTRY = """
proc @p (i1$ %c) -> (i8$ %y) {
entry:
  %cp = prb i1$ %c
  %zero = const i8 0
  %one = const i8 1
  %lim = const i8 3
  br %cp, %pre_a, %pre_b
pre_a:
  br %head
pre_b:
  br %head
head:
  %i = phi i8 [%zero, %pre_a], [%one, %pre_b], [%next, %head]
  %next = add i8 %i, %one
  %more = ult i8 %next, %lim
  br %more, %exit, %head
exit:
  %t = const time 0s
  drv i8$ %y, %i after %t
  wait %entry for %c
}
"""


def test_multiple_preheaders_reject():
    module = parse_module(MULTI_ENTRY)
    proc = module.get("p")
    assert unroll.run(proc) == 0
    reasons = unroll.failure_reasons(proc)
    assert len(reasons) == 1
    assert "outside predecessors" in reasons[0]


INFINITE = """
proc @p (i8$ %x) -> (i8$ %y) {
entry:
  %zero = const i8 0
  br %head
head:
  %i = phi i8 [%zero, %entry], [%i, %head]
  %true = const i1 1
  br %true, %exit, %head
exit:
  wait %entry for %x
}
"""


def test_compile_time_nontermination_rejects():
    module = parse_module(INFINITE)
    proc = module.get("p")
    assert unroll.run(proc) == 0
    reasons = unroll.failure_reasons(proc)
    assert len(reasons) == 1
    assert "did not terminate" in reasons[0]


def test_unknown_logic_data_folds_by_ieee_semantics():
    """Branch conditions are always ``i1`` (the builder enforces it), so
    an X can only enter through comparisons — and ``eq`` on an unknown
    is *false* under IEEE 1164, which the symbolic executor reproduces:
    the loop below exits on its first test."""
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %zero = const l1 "X"
      br %head
    head:
      %i = phi l1 [%zero, %entry], [%i, %head]
      %cont = eq l1 %i, %i
      br %cont, %exit, %head
    exit:
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1  # X == X is 0 -> exits immediately
    assert len(unroll._find_loops(proc)) == 0


def test_entities_are_not_touched():
    module = parse_module("""
    entity @e (i8$ %a) -> (i8$ %y) {
      %ap = prb i8$ %a
      %t = const time 0s
      drv i8$ %y, %ap after %t
    }
    """)
    entity = module.get("e")
    assert unroll.run(entity) == 0
    assert unroll.failure_reasons(entity) == []


SIDE_ENTRY = """
proc @p (i1$ %c, i8$ %x) -> (i8$ %y) {
entry:
  %cp = prb i1$ %c
  %zero = const i8 0
  %one = const i8 1
  %lim = const i8 3
  br %cp, %head, %side
side:
  br %body
head:
  %i = phi i8 [%zero, %entry], [%next, %body]
  br %body
body:
  %j = phi i8 [%i, %head], [%one, %side]
  %next = add i8 %j, %one
  %more = ult i8 %next, %lim
  br %more, %exit, %head
exit:
  wait %entry for %c, %x
}
"""


def test_side_entries_make_the_cycle_invisible_and_unchanged():
    """A side entry into the loop body makes the CFG irreducible:
    dominance-based back-edge detection reports no loop at all, so the
    unroller leaves the process untouched (and the pipeline falls back
    to the blocks/temporal-regions rejection)."""
    module = parse_module(SIDE_ENTRY)
    proc = module.get("p")
    blocks_before = len(proc.blocks)
    assert unroll.run(proc) == 0
    assert unroll.failure_reasons(proc) == []
    assert unroll._find_loops(proc) == []
    assert len(proc.blocks) == blocks_before


def test_emitted_instruction_cap_rejects(monkeypatch):
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %xp = prb i8$ %x
      %zero = const i8 0
      %one = const i8 1
      %lim = const i8 100
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %acc = phi i8 [%zero, %entry], [%acc2, %head]
      %acc2 = add i8 %acc, %xp
      %next = add i8 %i, %one
      %more = ult i8 %next, %lim
      br %more, %exit, %head
    exit:
      wait %entry for %x
    }
    """
    monkeypatch.setattr(unroll, "MAX_EMITTED", 10)
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 0
    reasons = unroll.failure_reasons(proc)
    assert reasons and "exceeds 10 instructions" in reasons[0]


def test_loop_branching_back_before_its_preheader_rejects():
    """An "exit" edge back to the preheader really forms an enclosing
    non-terminating loop; the discovery reports the *outer* loop and
    its symbolic execution hits the iteration bound."""
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %lim = const i8 3
      br %pre
    pre:
      br %head
    head:
      %i = phi i8 [%zero, %pre], [%next, %head]
      %next = add i8 %i, %one
      %more = ult i8 %next, %lim
      br %more, %pre, %head
    exit:
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 0
    reasons = unroll.failure_reasons(proc)
    assert len(reasons) == 1
    assert "pre" in reasons[0] and "did not terminate" in reasons[0]


def test_malformed_phi_missing_the_entry_edge_rejects():
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %lim = const i8 3
      br %head
    head:
      %i = phi i8 [%next, %head]
      %next = add i8 %i, %one
      %more = ult i8 %next, %lim
      br %more, %exit, %head
    exit:
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 0
    reasons = unroll.failure_reasons(proc)
    assert reasons and "no entry for the executed edge" in reasons[0]


def test_concrete_evaluation_errors_stay_runtime_errors():
    """A division by zero on constants inside the loop must not fold
    (and must not crash the unroller): the instruction is staged so the
    error still happens at runtime, exactly as the loop would have."""
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %lim = const i8 2
      %t = const time 0s
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %bad = udiv i8 %one, %zero
      %next = add i8 %i, %one
      %more = ult i8 %next, %lim
      br %more, %exit, %head
    exit:
      drv i8$ %y, %bad after %t
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1
    divs = [i for i in proc.entry.instructions if i.opcode == "udiv"]
    assert divs  # staged, not folded away


def test_mux_with_concrete_selector_picks_through_the_array():
    """A concrete selector resolves the chosen element even when other
    elements are runtime values — via the feeding array instruction."""
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %xp = prb i8$ %x
      %zero = const i8 0
      %one = const i1 1
      %i1one = const i8 1
      %lim = const i8 2
      %t = const time 0s
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %arr = [i8 %xp, %i]
      %pick = mux i8 %arr, %one
      %next = add i8 %i, %i1one
      %more = ult i8 %next, %lim
      br %more, %exit, %head
    exit:
      drv i8$ %y, %pick after %t
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1
    # %pick selected %i (concrete): the drive value folded to const 1.
    drv = next(i for i in proc.instructions() if i.opcode == "drv")
    assert drv.drv_value().opcode == "const"
    assert drv.drv_value().attrs["value"] == 1


def test_mux_splat_array_resolves_through_the_splat():
    source = """
    proc @p (i8$ %x, i1$ %s) -> (i8$ %y) {
    entry:
      %xp = prb i8$ %x
      %zero = const i8 0
      %one = const i8 1
      %lim = const i8 2
      %selv = const i1 1
      %t = const time 0s
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %arr = [4 x i8 %xp]
      %pick = mux i8 %arr, %selv
      %next = add i8 %i, %one
      %more = ult i8 %next, %lim
      br %more, %exit, %head
    exit:
      drv i8$ %y, %pick after %t
      wait %entry for %x, %s
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1
    drv = next(i for i in proc.instructions() if i.opcode == "drv")
    assert drv.drv_value().opcode == "prb"  # resolved to %xp itself


def test_never_taken_break_edges_do_not_block_unrolling():
    """A break-style exit edge that is never taken feeds the exit phi a
    value that is never computed; the unroller must prune that pair with
    the dead edge instead of rejecting the loop."""
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %three = const i8 3
      %nine = const i8 9
      %forty = const i8 40
      %t = const time 0s
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %back]
      %c1 = ult i8 %i, %three
      br %c1, %out, %body
    body:
      %c2 = eq i8 %i, %nine
      br %c2, %back, %brk
    brk:
      %dead = add i8 %i, %forty
      br %out
    back:
      %next = add i8 %i, %one
      br %head
    out:
      %r = phi i8 [%i, %head], [%dead, %brk]
      drv i8$ %y, %r after %t
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1
    drv = next(i for i in proc.instructions() if i.opcode == "drv")
    assert drv.drv_value().opcode == "const"
    assert drv.drv_value().attrs["value"] == 3


def test_exit_phi_edges_from_outside_blocks_get_final_values():
    """An outside block dominated by the loop can loop back into the
    exit block carrying a *loop-defined* value on its own edge; that
    pair must be rewritten to the final value, not reinstalled stale
    (which would leave a dangling reference into the deleted loop)."""
    from repro.ir import verify_module

    source = """
    proc @p (i1$ %go, i8$ %x) -> (i8$ %y) {
    entry:
      %zero = const i8 0
      %one = const i8 1
      %three = const i8 3
      %t = const time 0s
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %next = add i8 %i, %one
      %more = ult i8 %next, %three
      br %more, %post, %head
    post:
      %r = phi i8 [%i, %head], [%i, %spin]
      %gop = prb i1$ %go
      br %gop, %done, %spin
    spin:
      br %post
    done:
      drv i8$ %y, %r after %t
      wait %entry for %go, %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1
    # No operand may reference an instruction from the deleted loop.
    for inst in proc.instructions():
        for op in inst.operands:
            if hasattr(op, "parent") and hasattr(op, "opcode"):
                assert op.parent is not None, (inst, op)
    verify_module(module)


def test_symbolic_unroll_emits_into_the_preheader():
    source = """
    proc @p (i8$ %x) -> (i8$ %y) {
    entry:
      %xp = prb i8$ %x
      %zero = const i8 0
      %one = const i8 1
      %lim = const i8 4
      %t = const time 0s
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %acc = phi i8 [%zero, %entry], [%acc2, %head]
      %acc2 = add i8 %acc, %xp
      %next = add i8 %i, %one
      %more = ult i8 %next, %lim
      br %more, %exit, %head
    exit:
      drv i8$ %y, %acc2 after %t
      wait %entry for %x
    }
    """
    module = parse_module(source)
    proc = module.get("p")
    assert unroll.run(proc) == 1
    # Loop gone: entry now branches straight to the exit block, and the
    # unrolled adds (4 iterations of acc2 = acc + x) live in the entry.
    assert len(proc.blocks) == 2
    entry = proc.entry
    adds = [i for i in entry.instructions if i.opcode == "add"]
    assert len(adds) == 4
