"""DNF canonicalization: correctness against brute-force truth tables."""

import itertools

import pytest
from hypothesis import given, strategies as st

from repro.ir import Builder, Function, int_type
from repro.passes.dnf import (
    FALSE, TRUE, build_dnf, evaluate_dnf, negate_dnf, simplify_dnf, terms,
)


def _make_atoms(n):
    """n i1 function arguments to serve as opaque atoms."""
    func = Function("f", [int_type(1)] * n, [f"a{i}" for i in range(n)],
                    int_type(1))
    block = func.create_block("entry")
    return func, Builder.at_end(block), func.args


class _ExprGen:
    """Random boolean expression trees over the atoms, built as IR."""

    def __init__(self, builder, atoms, rng):
        self.b = builder
        self.atoms = atoms
        self.rng = rng

    def gen(self, depth):
        choice = self.rng.draw(st.integers(0, 5 if depth > 0 else 0))
        if choice == 0:
            return self.rng.draw(st.sampled_from(self.atoms))
        if choice == 1:
            return self.b.not_(self.gen(depth - 1))
        a = self.gen(depth - 1)
        b_ = self.gen(depth - 1)
        if choice == 2:
            return self.b.and_(a, b_)
        if choice == 3:
            return self.b.or_(a, b_)
        if choice == 4:
            return self.b.xor(a, b_)
        return self.b.eq(a, b_)


def _eval_ir(value, assignment):
    """Ground-truth evaluation of the boolean IR expression."""
    from repro.ir.instructions import Instruction

    if not isinstance(value, Instruction):
        return assignment[id(value)]
    op = value.opcode
    if op == "const":
        return bool(value.attrs["value"])
    ops = [_eval_ir(o, assignment) for o in value.operands]
    if op == "and":
        return ops[0] and ops[1]
    if op == "or":
        return ops[0] or ops[1]
    if op == "xor" or op == "neq":
        return ops[0] != ops[1]
    if op == "eq":
        return ops[0] == ops[1]
    if op == "not":
        return not ops[0]
    raise AssertionError(op)


@given(st.data())
def test_dnf_matches_truth_table(data):
    func, builder, atoms = _make_atoms(3)
    expr = _ExprGen(builder, atoms, data).gen(3)
    dnf = build_dnf(expr)
    for values in itertools.product([False, True], repeat=3):
        assignment = {id(a): v for a, v in zip(atoms, values)}
        assert evaluate_dnf(dnf, assignment) == _eval_ir(expr, assignment)


@given(st.data())
def test_negation_complements(data):
    func, builder, atoms = _make_atoms(3)
    expr = _ExprGen(builder, atoms, data).gen(2)
    dnf = build_dnf(expr)
    negated = negate_dnf(dnf)
    for values in itertools.product([False, True], repeat=3):
        assignment = {id(a): v for a, v in zip(atoms, values)}
        assert evaluate_dnf(negated, assignment) == \
            (not evaluate_dnf(dnf, assignment))


def test_posedge_pattern():
    """The Figure 5 condition and(neq(clk0, clk1), clk1) canonicalizes to
    the single term {¬clk0, clk1} — the rising edge."""
    func, builder, (clk0, clk1, _) = _make_atoms(3)
    chg = builder.neq(clk0, clk1)
    posedge = builder.and_(chg, clk1)
    dnf = build_dnf(posedge)
    result = terms(dnf)
    assert len(result) == 1
    literals = {(v.name, p) for _k, v, p in result[0]}
    assert literals == {("a0", False), ("a1", True)}


def test_constants_fold():
    func, builder, (a, _, _) = _make_atoms(3)
    one = builder.const_int(int_type(1), 1)
    zero = builder.const_int(int_type(1), 0)
    assert build_dnf(one) == TRUE
    assert build_dnf(zero) == FALSE
    assert build_dnf(builder.and_(a, zero)) == FALSE
    assert terms(build_dnf(builder.or_(a, one))) == [frozenset()]


def test_contradictions_pruned():
    func, builder, (a, _, _) = _make_atoms(3)
    contradiction = builder.and_(a, builder.not_(a))
    assert build_dnf(contradiction) == FALSE


def test_absorption():
    func, builder, (a, b, _) = _make_atoms(3)
    # a ∨ (a ∧ b) simplifies to a.
    redundant = builder.or_(a, builder.and_(a, b))
    result = terms(build_dnf(redundant))
    assert len(result) == 1
    assert len(result[0]) == 1
