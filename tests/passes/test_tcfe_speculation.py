"""Speculative if-conversion in TCFE: what may move, and what must not."""

from repro.ir import parse_module
from repro.passes import tcfe
from repro.sim import simulate


def _parse_entity_ops(body):
    module = parse_module(f"""
    proc @p (i8$ %a, i8$ %b, i1$ %c, l8$ %l) -> (i8$ %y) {{
    entry:
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %cp = prb i1$ %c
      %lp = prb l8$ %l
      %t = const time 0s
      br %cp, %other, %side
    side:
{body}
      br %join
    other:
      br %join
    join:
      %r = phi i8 [%v, %side], [%ap, %other]
      drv i8$ %y, %r after %t
      wait %entry for %a, %b, %c, %l
    }}
    """)
    return module.get("p")


def test_pure_side_blocks_are_hoisted_and_converted():
    proc = _parse_entity_ops("      %v = add i8 %ap, %bp")
    assert tcfe.run(proc)
    # The diamond collapsed: the add moved up, the phi became a mux.
    opcodes = [i.opcode for i in proc.instructions()]
    assert "phi" not in opcodes
    assert "mux" in opcodes and "add" in opcodes


def test_division_is_not_speculated():
    proc = _parse_entity_ops("      %v = udiv i8 %ap, %bp")
    tcfe.run(proc)
    # The divide stays guarded in its own block: the triangle with a
    # raising-on-zero side must not collapse (empty-block threading of
    # the other arm is fine).
    div = next(i for i in proc.instructions() if i.opcode == "udiv")
    assert div.parent.name.startswith("side")
    assert any(i.opcode == "phi" for i in proc.instructions())


def test_logic_selector_mux_is_not_speculated():
    """An lN-selector mux raises on an X selector at runtime: hoisting
    it onto the always-taken path could introduce that error."""
    proc = _parse_entity_ops("""      %la = [l8 %lp, %lp]
      %lsel = trunc l8 %lp to l1
      %lv = mux l8 %la, %lsel
      %veq = eq l8 %lv, %lp
      %v = zext i1 %veq to i8""")
    tcfe.run(proc)
    mux = next(i for i in proc.instructions() if i.opcode == "mux"
               and i.operands[1].type.is_logic)
    assert mux.parent.name.startswith("side")


def test_unknown_shift_amounts_on_integers_are_not_speculated():
    from repro.passes.tcfe import _speculatable
    module = parse_module("""
    proc @q (i8$ %a, l8$ %l) -> (i8$ %y) {
    entry:
      %ap = prb i8$ %a
      %lp = prb l8$ %l
      %s1 = shl i8 %ap, %lp
      %s2 = shl l8 %lp, %ap
      %arr = [i8 %ap, %ap]
      %one = const i1 1
      %m = mux i8 %arr, %one
      halt
    }
    """)
    insts = {i.name: i for i in module.get("q").instructions()
             if i.name}
    assert not _speculatable(insts["s1"])  # iN value, lN amount: may raise
    assert _speculatable(insts["s2"])      # lN value degrades to X
    assert _speculatable(insts["m"])       # int selector is total


def test_dynamic_aggregate_indices_are_not_speculated():
    from repro.passes.tcfe import _speculatable
    module = parse_module("""
    proc @q (i8$ %a) -> (i8$ %y) {
    entry:
      %ap = prb i8$ %a
      %arr = [4 x i8 %ap]
      %static = extf i8, [4 x i8] %arr, 2
      %dyn = extf i8, [4 x i8] %arr, %ap
      halt
    }
    """)
    insts = {i.name: i for i in module.get("q").instructions() if i.name}
    assert _speculatable(insts["static"])
    assert not _speculatable(insts["dyn"])


def test_speculated_conversion_preserves_simulation():
    source = """
    proc @p (i8$ %a, i8$ %b, i1$ %c) -> (i8$ %y) {
    entry:
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %cp = prb i1$ %c
      %t = const time 0s
      br %cp, %other, %side
    side:
      %v = add i8 %ap, %bp
      br %join
    other:
      br %join
    join:
      %r = phi i8 [%v, %side], [%ap, %other]
      drv i8$ %y, %r after %t
      wait %entry for %a, %b, %c
    }

    proc @tb (i8$ %y) -> (i8$ %a, i8$ %b, i1$ %c) {
    entry:
      %t1 = const time 1ns
      %va = const i8 10
      %vb = const i8 32
      %on = const i1 1
      %off = const i1 0
      drv i8$ %a, %va after %t1
      drv i8$ %b, %vb after %t1
      drv i1$ %c, %on after %t1
      wait %s1 for %y
    s1:
      %t2 = const time 1ns
      drv i1$ %c, %off after %t2
      wait %s2 for %y
    s2:
      halt
    }

    entity @top () -> () {
      %z = const i8 0
      %o = const i1 0
      %a = sig i8 %z
      %b = sig i8 %z
      %c = sig i1 %o
      %y = sig i8 %z
      inst @p (i8$ %a, i8$ %b, i1$ %c) -> (i8$ %y)
      inst @tb (i8$ %y) -> (i8$ %a, i8$ %b, i1$ %c)
    }
    """
    ref = simulate(parse_module(source), "top")
    module = parse_module(source)
    tcfe.run(module.get("p"))
    low = simulate(module, "top")
    assert ref.trace.differences(low.trace) == []
