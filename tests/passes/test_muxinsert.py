"""Mux insertion: conditional/partial drives and N-way mux formation."""

from repro.ir import parse_module
from repro.ir.printer import print_unit
from repro.passes import muxinsert
from repro.sim import simulate


COND_DRIVE = """
entity @latch (i8$ %d, i1$ %en) -> (i8$ %q) {
  %dp = prb i8$ %d
  %enp = prb i1$ %en
  %t = const time 0s
  drv i8$ %q, %dp after %t if %enp
}

proc @tb () -> () {
entry:
  %z = const i8 0
  %t1 = const time 1ns
  %en0 = const i1 0
  %en1 = const i1 1
  %v1 = const i8 42
  %v2 = const i8 7
  drv i8$ %d, %v1 after %t1
  drv i1$ %en, %en1 after %t1
  wait %s1 for %q
s1:
  %t2 = const time 1ns
  drv i1$ %en, %en0 after %t2
  drv i8$ %d, %v2 after %t2
  wait %s2 for %d
s2:
  halt
}

entity @top () -> () {
  %z = const i8 0
  %o = const i1 0
  %d = sig i8 %z
  %en = sig i1 %o
  %q = sig i8 %z
  inst @latch (i8$ %d, i1$ %en) -> (i8$ %q)
  inst @tb () -> ()
}
"""


def _fix_tb(src):
    # The testbench process above drives nets it does not own through
    # its signature; rewrite it as proper ports.
    return src.replace(
        "proc @tb () -> ()",
        "proc @tb (i8$ %q) -> (i8$ %d, i1$ %en)").replace(
        "inst @tb () -> ()",
        "inst @tb (i8$ %q) -> (i8$ %d, i1$ %en)")


def test_conditional_drive_becomes_feedback_mux():
    module = parse_module(_fix_tb(COND_DRIVE))
    latch = module.get("latch")
    ref = simulate(parse_module(_fix_tb(COND_DRIVE)), "top")
    assert muxinsert.run(latch)
    text = print_unit(latch)
    assert "if" not in text.split("drv")[1]
    assert "mux" in text and "prb i8$ %q" in text
    low = simulate(module, "top")
    assert ref.trace.differences(low.trace) == []


PARTIAL_DRIVE = """
entity @slicewr (i8$ %d) -> (i16$ %q) {
  %dp = prb i8$ %d
  %t = const time 0s
  %proj = exts i8$, i16$ %q, 4, 8
  drv i8$ %proj, %dp after %t
}
"""


def test_partial_drive_becomes_whole_signal_inss():
    module = parse_module(PARTIAL_DRIVE)
    entity = module.get("slicewr")
    assert muxinsert.run(entity)
    text = print_unit(entity)
    assert "inss" in text
    drv = next(i for i in entity.body if i.opcode == "drv")
    assert drv.drv_signal().type.element.width == 16
    assert drv.drv_condition() is None


MULTI_DRIVER = """
entity @wired (i8$ %a, i8$ %b, i1$ %s) -> (i8$ %q) {
  %ap = prb i8$ %a
  %bp = prb i8$ %b
  %sp = prb i1$ %s
  %ns = not i1 %sp
  %t = const time 0s
  drv i8$ %q, %ap after %t if %sp
  drv i8$ %q, %bp after %t if %ns
}
"""


def test_multi_driver_signals_are_left_alone():
    module = parse_module(MULTI_DRIVER)
    entity = module.get("wired")
    assert not muxinsert.run(entity)
    drvs = [i for i in entity.body if i.opcode == "drv"]
    assert all(d.drv_condition() is not None for d in drvs)


PRIORITY_CHAIN = """
entity @prio (i8$ %v0, i8$ %v1, i8$ %v2, i8$ %v3,
              i1$ %c1, i1$ %c2, i1$ %c3) -> (i8$ %q) {
  %p0 = prb i8$ %v0
  %p1 = prb i8$ %v1
  %p2 = prb i8$ %v2
  %p3 = prb i8$ %v3
  %k1 = prb i1$ %c1
  %k2 = prb i1$ %c2
  %k3 = prb i1$ %c3
  %a1 = [i8 %p0, %p1]
  %m1 = mux i8 %a1, %k1
  %a2 = [i8 %m1, %p2]
  %m2 = mux i8 %a2, %k2
  %a3 = [i8 %m2, %p3]
  %m3 = mux i8 %a3, %k3
  %t = const time 0s
  drv i8$ %q, %m3 after %t
}
"""


def test_priority_chain_flattens_to_nway_mux():
    module = parse_module(PRIORITY_CHAIN)
    ref = simulate(parse_module(PRIORITY_CHAIN), "prio")
    entity = module.get("prio")
    assert muxinsert.run(entity)
    muxes = [i for i in entity.body if i.opcode == "mux"]
    wide = [m for m in muxes if len(m.operands[0].operands) == 4]
    assert len(wide) == 1, print_unit(entity)
    # The selector tower runs on a 2-bit priority index, not the 8-bit
    # datapath.
    assert wide[0].operands[1].type.width == 2
    low = simulate(module, "prio")
    assert ref.trace.differences(low.trace) == []


def test_rewritten_drives_reach_the_netlist_level():
    """After mux insertion, a conditional + partial drive maps onto
    library cells (feedback mux + insert wiring) and the netlist trace
    matches the structural one."""
    from repro.interop import netlist_design

    source = """
    entity @dut (i8$ %d, i1$ %en) -> (i16$ %q) {
      %dp = prb i8$ %d
      %enp = prb i1$ %en
      %t = const time 0s
      %proj = exts i8$, i16$ %q, 4, 8
      drv i8$ %proj, %dp after %t if %enp
    }

    proc @tb (i16$ %q) -> (i8$ %d, i1$ %en) {
    entry:
      %t1 = const time 1ns
      %v1 = const i8 42
      %v2 = const i8 7
      %on = const i1 1
      %off = const i1 0
      drv i8$ %d, %v1 after %t1
      drv i1$ %en, %on after %t1
      wait %s1 for %q
    s1:
      %t2 = const time 1ns
      drv i1$ %en, %off after %t2
      drv i8$ %d, %v2 after %t2
      wait %s2 for %d
    s2:
      halt
    }

    entity @top () -> () {
      %z8 = const i8 0
      %z16 = const i16 0
      %o = const i1 0
      %d = sig i8 %z8
      %en = sig i1 %o
      %q = sig i16 %z16
      inst @dut (i8$ %d, i1$ %en) -> (i16$ %q)
      inst @tb (i16$ %q) -> (i8$ %d, i1$ %en)
    }
    """
    ref = simulate(parse_module(source), "top")
    module = parse_module(source)
    muxinsert.run(module.get("dut"))
    linked = netlist_design(module)
    low = simulate(linked, "top")
    active = ref.trace.live_signals()
    assert active - set(low.trace.finalize().changes) == set()
    assert ref.trace.differences(low.trace) == []
    cells = [u.name for u in linked if u.name.startswith("cell_")]
    assert any("inss" in c for c in cells), cells


LATCHY_SV = """
module dut (input logic en, input logic [7:0] d,
            output logic [7:0] q);
  always_comb begin
    if (en)
      q = d;
  end
endmodule

module tb;
  logic en;
  logic [7:0] d, q;
  dut u (.en(en), .d(d), .q(q));
  initial begin
    en = 1'b1; d = 8'd5;  #1ns;
    d = 8'd9;             #1ns;
    en = 1'b0; d = 8'd77; #1ns;
    en = 1'b1;            #1ns;
  end
endmodule
"""


def test_latchy_always_comb_lowers_to_netlist_via_muxinsert():
    """A partial combinational assignment (`if (en) q = d;` with no
    else) keeps a dynamic drive condition through TCM/PL; mux insertion
    is what gets it through the technology mapper."""
    from repro.interop import netlist_design
    from repro.moore import compile_sv
    from repro.passes.pipeline import lower_to_structural

    ref = simulate(compile_sv(LATCHY_SV), "tb")
    module = compile_sv(LATCHY_SV)
    report = lower_to_structural(module, strict=False, verify=False)
    assert report.design_rejections() == []
    linked = netlist_design(module)
    low = simulate(linked, "tb")
    assert ref.trace.differences(low.trace) == []


def test_non_entity_units_are_untouched():
    module = parse_module("""
    proc @p (i8$ %a) -> (i8$ %b) {
    entry:
      halt
    }
    """)
    assert not muxinsert.run(module.get("p"))


def test_root_signal_walks_projections_and_rejects_values():
    module = parse_module("""
    entity @e (i8$ %a) -> ({i8, i8}$ %q) {
      %ap = prb i8$ %a
      %t = const time 0s
      %f = extf i8$, {i8, i8}$ %q, 0
      drv i8$ %f, %ap after %t
    }
    """)
    entity = module.get("e")
    drv = next(i for i in entity.body if i.opcode == "drv")
    root, steps = muxinsert._root_signal(drv.drv_signal())
    assert root is not None and len(steps) == 1
    const = next(i for i in entity.body if i.opcode == "const")
    assert muxinsert._root_signal(const) == (None, None)
    # The field drive itself rewrites to a whole-struct insf drive.
    assert muxinsert.run(entity)
    new_drv = next(i for i in entity.body if i.opcode == "drv")
    assert new_drv.drv_signal().type.element.is_struct


def test_delayed_conditional_drives_are_left_alone():
    module = parse_module("""
    entity @d (i8$ %a, i1$ %en) -> (i8$ %q) {
      %ap = prb i8$ %a
      %enp = prb i1$ %en
      %t = const time 5ns
      drv i8$ %q, %ap after %t if %enp
    }
    """)
    entity = module.get("d")
    assert not muxinsert.run(entity)
    drv = next(i for i in entity.body if i.opcode == "drv")
    assert drv.drv_condition() is not None


def test_cross_entity_shared_nets_are_not_rewritten():
    """Two entities conditionally driving one parent net must both keep
    their conditions: rewriting either would turn at-most-one-active
    into permanent multi-driver resolution."""
    source = """
    entity @drv_a (i8$ %v, i1$ %c) -> (i8$ %q) {
      %vp = prb i8$ %v
      %cp = prb i1$ %c
      %t = const time 0s
      drv i8$ %q, %vp after %t if %cp
    }

    entity @drv_b (i8$ %v, i1$ %c) -> (i8$ %q) {
      %vp = prb i8$ %v
      %cp = prb i1$ %c
      %nc = not i1 %cp
      %t = const time 0s
      drv i8$ %q, %vp after %t if %nc
    }

    entity @top (i8$ %a, i8$ %b, i1$ %sel) -> (i8$ %s) {
      inst @drv_a (i8$ %a, i1$ %sel) -> (i8$ %s)
      inst @drv_b (i8$ %b, i1$ %sel) -> (i8$ %s)
    }
    """
    module = parse_module(source)
    assert not muxinsert.run(module.get("drv_a"))
    assert not muxinsert.run(module.get("drv_b"))
    for name in ("drv_a", "drv_b"):
        drv = next(i for i in module.get(name).body if i.opcode == "drv")
        assert drv.drv_condition() is not None


def test_singly_instantiated_output_is_rewritten():
    source = """
    entity @latch (i8$ %d, i1$ %en) -> (i8$ %q) {
      %dp = prb i8$ %d
      %enp = prb i1$ %en
      %t = const time 0s
      drv i8$ %q, %dp after %t if %enp
    }

    entity @top (i8$ %d, i1$ %en) -> (i8$ %out) {
      %z = const i8 0
      %q = sig i8 %z
      inst @latch (i8$ %d, i1$ %en) -> (i8$ %q)
      %qp = prb i8$ %q
      %t = const time 0s
      drv i8$ %out, %qp after %t
    }
    """
    module = parse_module(source)
    assert muxinsert.run(module.get("latch"))
    drv = next(i for i in module.get("latch").body if i.opcode == "drv")
    assert drv.drv_condition() is None


def test_nway_flattening_is_idempotent():
    module = parse_module(PRIORITY_CHAIN)
    entity = module.get("prio")
    assert muxinsert.run(entity)
    size = len(list(entity.body))
    assert not muxinsert.run(entity)
    assert len(list(entity.body)) == size


def test_short_chains_stay_two_way():
    source = PRIORITY_CHAIN.replace("""  %a3 = [i8 %m2, %p3]
  %m3 = mux i8 %a3, %k3
  %t = const time 0s
  drv i8$ %q, %m3 after %t""", """  %t = const time 0s
  drv i8$ %q, %m2 after %t""")
    module = parse_module(source)
    entity = module.get("prio")
    changed = muxinsert.run(entity)
    muxes = [i for i in entity.body if i.opcode == "mux"]
    assert all(len(m.operands[0].operands) == 2 for m in muxes)
