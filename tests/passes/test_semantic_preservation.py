"""Property test: the lowering pipeline preserves simulation semantics.

Random combinational and sequential SystemVerilog designs are generated,
compiled with Moore, lowered to Structural LLHD, and simulated before and
after; the traces must agree on all ports.  This is the repository's
strongest check on the §4 passes — any miscompilation in CF/CSE/IS, ECM,
TCM, TCFE, PL, or Deseq shows up as a trace difference.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.moore import compile_sv
from repro.passes import deseq, process_lowering
from repro.passes.pipeline import _prepare_process
from repro.sim import simulate

_OPS = ["+", "-", "&", "|", "^"]


@st.composite
def comb_design(draw):
    """A random combinational module: nested if/else over 8-bit signals."""
    n_inputs = draw(st.integers(2, 4))
    inputs = [f"a{i}" for i in range(n_inputs)]

    def expr(depth):
        if depth == 0 or draw(st.booleans()):
            return draw(st.sampled_from(inputs))
        op = draw(st.sampled_from(_OPS))
        return f"({expr(depth - 1)} {op} {expr(depth - 1)})"

    def stmt(depth):
        if depth == 0:
            return f"y = {expr(2)};"
        cond = draw(st.sampled_from(inputs))
        bit = draw(st.integers(0, 7))
        inner = stmt(depth - 1)
        if draw(st.booleans()):
            return (f"if ({cond}[{bit}]) {inner} "
                    f"else y = {expr(1)};")
        return f"if ({cond}[{bit}]) {inner}"

    body = f"y = {expr(2)};\n    " + stmt(draw(st.integers(0, 2)))
    ports = ", ".join(f"input logic [7:0] {name}" for name in inputs)
    design = f"""
module dut ({ports}, output logic [7:0] y);
  always_comb begin
    {body}
  end
endmodule
"""
    stimulus = []
    for step in range(draw(st.integers(2, 5))):
        for name in inputs:
            value = draw(st.integers(0, 255))
            stimulus.append(f"    {name} = 8'd{value};")
        stimulus.append("    #2ns;")
    decls = "\n  ".join(f"logic [7:0] {name};" for name in inputs)
    conns = ", ".join(f".{name}({name})" for name in inputs + ["y"])
    tb = f"""
module tb;
  {decls}
  logic [7:0] y;
  dut d ({conns});
  initial begin
{chr(10).join(stimulus)}
  end
endmodule
"""
    return design + tb


def _lower_dut_only(module):
    for proc in list(module.processes()):
        if proc.name.startswith("tb"):
            continue
        _prepare_process(proc, module)
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(module, proc)
        else:
            assert deseq.desequentialize(module, proc) is not None, \
                "generated design failed to lower"


@given(comb_design())
@settings(max_examples=25, deadline=None)
def test_comb_lowering_preserves_traces(source):
    behavioural = compile_sv(source)
    lowered = compile_sv(source)
    _lower_dut_only(lowered)
    ref = simulate(behavioural, "tb")
    low = simulate(lowered, "tb")
    assert ref.trace.differences(low.trace, signals=["tb.y"]) == []


@st.composite
def seq_design(draw):
    """A random registered datapath with enable/clear controls."""
    op = draw(st.sampled_from(_OPS))
    use_enable = draw(st.booleans())
    use_clear = draw(st.booleans())
    body = f"q <= q {op} x;"
    if use_enable:
        body = f"if (en) {body}"
    if use_clear:
        body = f"if (clr) q <= 8'd0; else begin {body} end"
    design = f"""
module dut (input clk, input en, input clr, input logic [7:0] x,
            output logic [7:0] q);
  always_ff @(posedge clk) begin
    {body}
  end
endmodule
"""
    stim = []
    for _ in range(draw(st.integers(3, 8))):
        stim.append(f"    x = 8'd{draw(st.integers(0, 255))};")
        stim.append(f"    en = 1'b{draw(st.integers(0, 1))};")
        stim.append(f"    clr = 1'b{draw(st.integers(0, 1))};")
        stim.append("    #1ns; clk = 1; #1ns; clk = 0;")
    tb = f"""
module tb;
  logic clk, en, clr;
  logic [7:0] x, q;
  dut d (.clk(clk), .en(en), .clr(clr), .x(x), .q(q));
  initial begin
{chr(10).join(stim)}
  end
endmodule
"""
    return design + tb


@given(seq_design())
@settings(max_examples=25, deadline=None)
def test_seq_lowering_preserves_traces(source):
    behavioural = compile_sv(source)
    lowered = compile_sv(source)
    _lower_dut_only(lowered)
    ref = simulate(behavioural, "tb")
    low = simulate(lowered, "tb")
    assert ref.trace.differences(low.trace, signals=["tb.q"]) == []


@given(seq_design())
@settings(max_examples=10, deadline=None)
def test_seq_lowering_agrees_across_backends(source):
    lowered = compile_sv(source)
    _lower_dut_only(lowered)
    interp = simulate(lowered, "tb")
    blaze = simulate(lowered, "tb", backend="blaze")
    assert interp.trace.differences(blaze.trace) == []
