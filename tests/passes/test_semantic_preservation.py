"""The lowering pipeline preserves simulation semantics — staged.

Two layers of evidence:

1. **The staged suite harness** (the strong check): every design of the
   evaluation suite — two-state *and* nine-valued ``_l`` variants — is
   compiled and stopped after each named pipeline stage (``cleanup``,
   ``prepare``, ``lower``, and for fully-lowerable designs the
   ``netlist`` level after technology mapping), then simulated under the
   reference interpreter, the compiled (Blaze) engine, and the cycle
   scheduler.  Every staged trace must be byte-identical to the
   unlowered behavioural reference, signal for signal, and produce the
   same self-check assertion results.  Any miscompilation in CF/CSE/IS,
   ECM, TCM, TCFE, PL, Deseq, or the technology mapper shows up here.

2. **Property tests**: random combinational and sequential SystemVerilog
   designs are generated, lowered, and compared before/after.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.designs import ALL_DESIGNS, DESIGNS, NETLIST_DESIGNS, \
    compile_design
from repro.interop import netlist_design
from repro.moore import compile_sv
from repro.passes import deseq, process_lowering
from repro.passes.inline import InlineError
from repro.passes.manager import PassManager
from repro.passes.pipeline import (
    CLEANUP_SPEC, PREPARE_SPEC, _prepare_process, lower_to_structural,
)
from repro.sim import simulate

_OPS = ["+", "-", "&", "|", "^"]

# -- the staged suite harness --------------------------------------------------

#: Cycle budgets shared with the cross-engine equivalence oracle
#: (see tests/designs/__init__.py).
from ..designs import SUITE_TEST_CYCLES as STAGE_CYCLES  # noqa: E402

STAGES = ("cleanup", "prepare", "lower", "netlist")

ENGINES = ("interp", "blaze", "cycle")


def _engines(stage):
    """Engines exercised per stage: the levelized cone engine absorbs
    techmap library cells, so it joins the matrix at the netlist level
    (where its traces must be byte-identical like everyone else's)."""
    return ENGINES + ("levelized",) if stage == "netlist" else ENGINES


def _cycles(name):
    return STAGE_CYCLES[name]


def _apply_stage(module, stage):
    """Run the pipeline prefix named by ``stage`` on a whole module.

    ``cleanup`` and ``prepare`` mirror what ``lower_to_structural`` runs
    before the PL/Deseq rewrites; both are applied to *every* unit —
    testbenches included, since each pass must preserve semantics on any
    input.  ``lower`` is the full non-strict pipeline (testbench
    processes are rejected and stay behavioural); ``netlist`` maps the
    lowered entities through the technology mapper with a zero gate
    delay and returns the linked module.
    """
    if stage == "cleanup":
        pm = PassManager()
        for unit in module:
            pm.run_spec(CLEANUP_SPEC, unit)
        return module
    if stage == "prepare":
        pm = PassManager()
        for entity in module.entities():
            pm.run_spec(CLEANUP_SPEC, entity)
        for proc in list(module.processes()):
            try:
                pm.run_spec(PREPARE_SPEC, proc)
            except InlineError:
                pass  # stays behavioural; the lower stage reports it
        return module
    lower_to_structural(module, strict=False, verify=False)
    if stage == "netlist":
        return netlist_design(module)
    return module


@pytest.fixture(scope="module")
def references():
    """Unlowered interpreter runs, one per design (cached)."""
    cache = {}

    def get(name):
        if name not in cache:
            module = compile_design(name, cycles=_cycles(name))
            cache[name] = simulate(module, DESIGNS[name].top)
        return cache[name]
    return get


@pytest.mark.parametrize("stage", STAGES)
@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_staged_lowering_preserves_traces(references, name, stage):
    """Suite-wide staged equivalence across all three engines."""
    ref = references(name)
    # Every live signal of the reference must survive the stage under
    # its own name — Trace.differences compares only the intersection of
    # names, so without this a stage that dropped or renamed a live net
    # (e.g. a con merge recording only under the representative) would
    # pass vacuously.
    active = ref.trace.live_signals()
    for backend in _engines(stage):
        module = compile_design(name, cycles=_cycles(name))
        module = _apply_stage(module, stage)
        result = simulate(module, DESIGNS[name].top, backend=backend)
        missing = active - set(result.trace.finalize().changes)
        assert not missing, \
            f"{name}/{stage}/{backend}: live signals dropped: {missing}"
        diffs = ref.trace.differences(result.trace)
        assert diffs == [], f"{name}/{stage}/{backend}: {diffs[:4]}"
        assert result.assertion_failures == ref.assertion_failures, \
            f"{name}/{stage}/{backend}"


def test_every_suite_design_is_a_netlist_design():
    """The whole suite — 11 two-state + 11 nine-valued designs — lowers
    to the netlist level; nothing is exempt anymore."""
    assert sorted(NETLIST_DESIGNS) == sorted(ALL_DESIGNS)
    assert len(NETLIST_DESIGNS) == 22


@pytest.mark.parametrize("name", NETLIST_DESIGNS)
def test_netlist_designs_fully_reach_netlist_level(name):
    """Every design core lowers completely (only the testbench remains
    behavioural) and maps onto gate-library cells — ``technology_map``
    itself enforces the NETLIST level contract on every mapped entity."""
    module = compile_design(name, cycles=_cycles(name))
    report = lower_to_structural(module, strict=False, verify=False)
    assert report.design_rejections() == []
    assert report.fully_lowered
    # Rejections that do remain are testbench-only, and each carries a
    # precise reason.
    for proc, why in report.rejected:
        assert report.is_testbench(proc), (proc, why)
        assert why
    linked = netlist_design(module)
    cells = [u.name for u in linked if u.name.startswith("cell_")]
    assert cells, f"{name}: techmap produced no library cells"


@st.composite
def comb_design(draw):
    """A random combinational module: nested if/else over 8-bit signals."""
    n_inputs = draw(st.integers(2, 4))
    inputs = [f"a{i}" for i in range(n_inputs)]

    def expr(depth):
        if depth == 0 or draw(st.booleans()):
            return draw(st.sampled_from(inputs))
        op = draw(st.sampled_from(_OPS))
        return f"({expr(depth - 1)} {op} {expr(depth - 1)})"

    def stmt(depth):
        if depth == 0:
            return f"y = {expr(2)};"
        cond = draw(st.sampled_from(inputs))
        bit = draw(st.integers(0, 7))
        inner = stmt(depth - 1)
        if draw(st.booleans()):
            return (f"if ({cond}[{bit}]) {inner} "
                    f"else y = {expr(1)};")
        return f"if ({cond}[{bit}]) {inner}"

    body = f"y = {expr(2)};\n    " + stmt(draw(st.integers(0, 2)))
    ports = ", ".join(f"input logic [7:0] {name}" for name in inputs)
    design = f"""
module dut ({ports}, output logic [7:0] y);
  always_comb begin
    {body}
  end
endmodule
"""
    stimulus = []
    for step in range(draw(st.integers(2, 5))):
        for name in inputs:
            value = draw(st.integers(0, 255))
            stimulus.append(f"    {name} = 8'd{value};")
        stimulus.append("    #2ns;")
    decls = "\n  ".join(f"logic [7:0] {name};" for name in inputs)
    conns = ", ".join(f".{name}({name})" for name in inputs + ["y"])
    tb = f"""
module tb;
  {decls}
  logic [7:0] y;
  dut d ({conns});
  initial begin
{chr(10).join(stimulus)}
  end
endmodule
"""
    return design + tb


def _lower_dut_only(module):
    for proc in list(module.processes()):
        if proc.name.startswith("tb"):
            continue
        _prepare_process(proc, module)
        if process_lowering.can_lower(proc):
            process_lowering.lower_process(module, proc)
        else:
            assert deseq.desequentialize(module, proc) is not None, \
                "generated design failed to lower"


@given(comb_design())
@settings(max_examples=25, deadline=None)
def test_comb_lowering_preserves_traces(source):
    behavioural = compile_sv(source)
    lowered = compile_sv(source)
    _lower_dut_only(lowered)
    ref = simulate(behavioural, "tb")
    low = simulate(lowered, "tb")
    assert ref.trace.differences(low.trace, signals=["tb.y"]) == []


@st.composite
def seq_design(draw):
    """A random registered datapath with enable/clear controls."""
    op = draw(st.sampled_from(_OPS))
    use_enable = draw(st.booleans())
    use_clear = draw(st.booleans())
    body = f"q <= q {op} x;"
    if use_enable:
        body = f"if (en) {body}"
    if use_clear:
        body = f"if (clr) q <= 8'd0; else begin {body} end"
    design = f"""
module dut (input clk, input en, input clr, input logic [7:0] x,
            output logic [7:0] q);
  always_ff @(posedge clk) begin
    {body}
  end
endmodule
"""
    stim = []
    for _ in range(draw(st.integers(3, 8))):
        stim.append(f"    x = 8'd{draw(st.integers(0, 255))};")
        stim.append(f"    en = 1'b{draw(st.integers(0, 1))};")
        stim.append(f"    clr = 1'b{draw(st.integers(0, 1))};")
        stim.append("    #1ns; clk = 1; #1ns; clk = 0;")
    tb = f"""
module tb;
  logic clk, en, clr;
  logic [7:0] x, q;
  dut d (.clk(clk), .en(en), .clr(clr), .x(x), .q(q));
  initial begin
{chr(10).join(stim)}
  end
endmodule
"""
    return design + tb


@given(seq_design())
@settings(max_examples=25, deadline=None)
def test_seq_lowering_preserves_traces(source):
    behavioural = compile_sv(source)
    lowered = compile_sv(source)
    _lower_dut_only(lowered)
    ref = simulate(behavioural, "tb")
    low = simulate(lowered, "tb")
    assert ref.trace.differences(low.trace, signals=["tb.q"]) == []


@given(seq_design())
@settings(max_examples=10, deadline=None)
def test_seq_lowering_agrees_across_backends(source):
    lowered = compile_sv(source)
    _lower_dut_only(lowered)
    interp = simulate(lowered, "tb")
    blaze = simulate(lowered, "tb", backend="blaze")
    assert interp.trace.differences(blaze.trace) == []
