"""Desequentialization of nine-valued (four-state) clocked processes.

The heart of the four-state lowering pipeline: a Moore-compiled
``always_ff @(posedge clk)`` on an ``l1`` clock must become a ``reg``
whose edge detection agrees with the behavioural eq/not/and network for
*every* IEEE 1164 old → new state pair — 81 combinations per edge
direction, checked against the verbatim tables in
``tests/ir/oracle1164.py``: an edge toward level L fires iff the X01
projection of the new value is L and the old value's projection was not
(so ``X → 1`` rises, ``1 → X`` does not fall, ``X → Z`` is no edge).

Also covered: the multi-edge trigger term that deseq cannot express is
*reported* as a rejection with its precise reason instead of silently
falling back to a generic shape message (regression for the former
``DeseqError`` swallow at deseq.py:118), and the nine-valued polarity
combinations without a reg equivalent are refused.
"""

import pytest

from repro.ir import Builder, parse_module, verify_module
from repro.ir.ninevalued import VALUES, LogicVec
from repro.ir.units import Entity, Process
from repro.ir.values import TimeValue
from repro.moore import compile_sv
from repro.passes import deseq, lower_to_structural
from repro.sim import simulate

from ..ir.oracle1164 import TO_X01_TABLE

DFF_SV = {
    "posedge": """
module dff (input clk, input [7:0] d, output logic [7:0] q);
  always_ff @(posedge clk) q <= d;
endmodule
""",
    "negedge": """
module dff (input clk, input [7:0] d, output logic [7:0] q);
  always_ff @(negedge clk) q <= d;
endmodule
""",
}

_NS = 1_000_000  # femtoseconds


def _attach_stimulus(module, old, new):
    """Add a top entity: dff on an l1 clock preset to ``old``, plus a
    stimulus that stabilizes d and then drives the clock to ``new``."""
    top = Entity("top", (), (), (), ())
    module.add(top)
    b = Builder.at_end(top.body)
    clk = b.sig(b.const_logic(old), name="clk")
    d = b.sig(b.const_logic(LogicVec.from_int(0, 8)), name="d")
    q = b.sig(b.const_logic(LogicVec.from_int(0, 8)), name="q")
    b.inst("dff", [clk, d], [q])
    stim = Process("stim", (), (), [clk.type, d.type], ["clk", "d"])
    module.add(stim)
    entry = stim.create_block("entry")
    sb = Builder.at_end(entry)
    data = sb.const_logic(LogicVec.from_int(0x55, 8))
    sb.drv(stim.outputs[1], data, sb.const_time(TimeValue(1 * _NS)))
    sb.drv(stim.outputs[0], sb.const_logic(new),
           sb.const_time(TimeValue(3 * _NS)))
    sb.halt()
    Builder.at_end(top.body).inst(stim, [], [clk, d])
    return module


def _edge_fires(edge, old, new):
    """The oracle: does a reg edge toward the target level fire?"""
    target = "1" if edge == "posedge" else "0"
    return (TO_X01_TABLE[new] == target
            and TO_X01_TABLE[old] != target)


@pytest.mark.parametrize("edge", sorted(DFF_SV))
def test_deseq_edge_oracle_all_81_pairs(edge):
    """Lowered reg and behavioural process agree on every old→new pair,
    and both match the IEEE 1164 X01 projection oracle."""
    for old in VALUES:
        for new in VALUES:
            behavioural = compile_sv(DFF_SV[edge], four_state=True)
            lowered = compile_sv(DFF_SV[edge], four_state=True)
            report = lower_to_structural(lowered)
            assert len(report.lowered_by_deseq) == 1, (edge, old, new)

            _attach_stimulus(behavioural, old, new)
            _attach_stimulus(lowered, old, new)
            ref = simulate(behavioural, "top")
            low = simulate(lowered, "top")
            assert ref.trace.differences(low.trace) == [], \
                f"{edge}: {old} -> {new}"

            fired = any(v.to_int() == 0x55 if v.is_two_valued else False
                        for _, v in ref.trace.history("top.q"))
            assert fired == _edge_fires(edge, old, new), \
                f"{edge}: {old} -> {new}: fired={fired}"


def test_fourstate_deseq_produces_l1_rise_trigger():
    module = compile_sv(DFF_SV["posedge"], four_state=True)
    report = lower_to_structural(module)
    assert report.lowered_by_deseq == ["dff_always_ff_1"]
    regs = [i for u in module for i in u.instructions()
            if i.opcode == "reg"]
    assert len(regs) == 1
    trigger = next(regs[0].reg_triggers())
    assert trigger["mode"] == "rise"
    assert trigger["trigger"].opcode == "prb"
    assert trigger["trigger"].type.is_logic
    verify_module(module)


def test_fourstate_async_reset_gets_rise_and_fall_triggers():
    module = compile_sv("""
module dff_rst (input clk, input rst_n, input [7:0] d,
                output logic [7:0] q);
  always_ff @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 8'd0;
    else q <= d;
  end
endmodule
""", four_state=True)
    report = lower_to_structural(module)
    assert len(report.lowered_by_deseq) == 1
    regs = [i for u in module for i in u.instructions()
            if i.opcode == "reg"]
    assert len(regs) == 1
    modes = sorted(t["mode"] for t in regs[0].reg_triggers())
    assert "rise" in modes and "fall" in modes


TWO_EDGE_PROC = """
proc @two_edges (i1$ %a, i1$ %b, i8$ %d) -> (i8$ %q) {
init:
  %a0 = prb i1$ %a
  %b0 = prb i1$ %b
  wait %check for %a, %b
check:
  %a1 = prb i1$ %a
  %b1 = prb i1$ %b
  %na0 = not i1 %a0
  %nb0 = not i1 %b0
  %ra = and i1 %na0, %a1
  %rb = and i1 %nb0, %b1
  %both = and i1 %ra, %rb
  %dp = prb i8$ %d
  %t = const time 0s
  drv i8$ %q, %dp after %t if %both
  br %init
}
"""


def test_multi_edge_term_is_reported_not_swallowed():
    """Regression: a term with two edges used to fail with the generic
    'does not match a pattern' message; the precise deseq reason must
    reach the LoweringReport under non-strict lowering."""
    module = parse_module(TWO_EDGE_PROC)
    report = lower_to_structural(module, strict=False)
    assert report.lowered_by_deseq == []
    reasons = dict(report.rejected)
    assert "two_edges" in reasons
    assert reasons["two_edges"] == \
        "deseq: more than one edge in a single trigger term"


def test_multi_edge_term_records_reason_via_desequentialize():
    module = parse_module(TWO_EDGE_PROC)
    reasons = {}
    result = deseq.desequentialize(module, module.get("two_edges"),
                                   reasons=reasons)
    assert result is None
    assert reasons == {
        "two_edges": "more than one edge in a single trigger term"}


def test_l1_polarity_without_reg_equivalent_is_rejected():
    """`was 1, now not-1` would fire on 1 → X, which reg cannot express;
    deseq must refuse it rather than silently change semantics."""
    module = parse_module("""
proc @weird (l1$ %clk, i8$ %d) -> (i8$ %q) {
init:
  %one = const l1 "1"
  %c0 = prb l1$ %clk
  %was = eq l1 %c0, %one
  wait %check for %clk
check:
  %c1 = prb l1$ %clk
  %now = eq l1 %c1, %one
  %nnow = not i1 %now
  %fire = and i1 %was, %nnow
  %dp = prb i8$ %d
  %t = const time 0s
  drv i8$ %q, %dp after %t if %fire
  br %init
}
""")
    reasons = {}
    result = deseq.desequentialize(module, module.get("weird"),
                                   reasons=reasons)
    assert result is None
    assert "no reg equivalent" in reasons["weird"]


def test_fourstate_accumulator_reaches_figure5_final_form():
    """The paper's flagship lowering result, on nine-valued types:
    inline + forward + reg-feedback reduce the four-state accumulator to
    ``reg l32$ %q, %sum rise %clkp if %enp`` (Figure 5, bottom right)."""
    from repro.ir import STRUCTURAL, print_module
    from repro.passes import (
        cleanup, forward_signals, inline_entity_insts,
        simplify_reg_feedback,
    )

    module = compile_sv("""
module acc (input clk, input [31:0] x, input en, output [31:0] q);
  bit [31:0] d;
  always_ff @(posedge clk) q <= #1ns d;
  always_comb begin
    d = q;
    if (en) d = q + x;
  end
endmodule
""", four_state=True)
    lower_to_structural(module)
    acc = module.get("acc")
    inline_entity_insts(module, acc)
    for name in [u.name for u in module if u.name != "acc"]:
        module.remove(name)
    cleanup(acc)
    forward_signals(acc)
    cleanup(acc)
    simplify_reg_feedback(acc)
    cleanup(acc)
    verify_module(module, level=STRUCTURAL)
    regs = [i for i in acc.body if i.opcode == "reg"]
    assert len(regs) == 1
    trigger = next(regs[0].reg_triggers())
    assert trigger["mode"] == "rise"
    assert trigger["value"].opcode == "add"
    assert trigger["value"].type.is_logic
    assert trigger["cond"] is not None
    text = print_module(module)
    assert "reg" in text and "mux" not in text


def test_instsimplify_keeps_ln_shift_by_zero():
    """Regression: `shl lN %x, 0` is NOT the identity — the engines
    degrade any unknown-carrying vector to all-X on a shift, amount 0
    included, so folding it away miscompiled X-propagation."""
    from repro.passes import instsimplify
    from repro.sim import simulate

    module = parse_module("""
entity @sh (l4$ %a) -> (l4$ %y) {
  %ap = prb l4$ %a
  %z = const i32 0
  %s = shl l4 %ap, %z
  %t = const time 0s
  drv l4$ %y, %s after %t
}
entity @top () -> () {
  %init = const l4 "0000"
  %a = sig l4 %init
  %y = sig l4 %init
  inst @sh (l4$ %a) -> (l4$ %y)
  inst @stim () -> (l4$ %a)
}
proc @stim () -> (l4$ %a) {
entry:
  %v = const l4 "0X10"
  %t = const time 1ns
  drv l4$ %a, %v after %t
  halt
}
""")
    instsimplify.run(module.get("sh"))
    ops = [i.opcode for i in module.get("sh").body]
    assert "shl" in ops, "lN shift by 0 must not fold away"
    result = simulate(module, "top")
    assert str(result.trace.history("top.y")[-1][1]) == "XXXX"
