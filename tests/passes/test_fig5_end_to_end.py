"""Figure 5 end-to-end: lowering the behavioural accumulator to
Structural LLHD, asserting the intermediate forms the paper shows and —
the property the paper's whole pipeline rests on — that lowering preserves
simulation behaviour."""

import pytest

from repro.analysis import TemporalRegions
from repro.ir import STRUCTURAL, parse_module, print_module, verify_module
from repro.passes import (
    cleanup, ecm, forward_signals, inline_entity_insts, lower_to_structural,
    simplify_reg_feedback, tcfe, tcm,
)
from repro.passes import cse, dce, instsimplify, process_lowering, deseq
from repro.sim import simulate

BEHAVIOURAL = """
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
event:
  %dp = prb i32$ %d
  %delay = const time 1ns
  drv i32$ %q, %dp after %delay
  br %init
}
proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
entry:
  %qp = prb i32$ %q
  %enp = prb i1$ %en
  %delay = const time 2ns
  drv i32$ %d, %qp after %delay
  br %enp, %final, %enabled
enabled:
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %d, %sum after %delay
  br %final
final:
  wait %entry for %q, %x, %en
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  %qi = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %qi)
  inst @acc_comb (i32$ %qi, i32$ %x, i1$ %en) -> (i32$ %d)
  %qp2 = prb i32$ %qi
  %tfwd = const time 0s
  drv i32$ %q, %qp2 after %tfwd
}
entity @top () -> () {
  %z1 = const i1 0
  %z32 = const i32 0
  %clk = sig i1 %z1
  %x = sig i32 %z32
  %en = sig i1 %z1
  %q = sig i32 %z32
  inst @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q)
  inst @stim () -> (i1$ %clk, i32$ %x, i1$ %en)
}
proc @stim () -> (i1$ %clk, i32$ %x, i1$ %en) {
entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %zero = const i8 0
  %one = const i8 1
  %cycles = const i8 12
  %t2 = const time 2ns
  %t4 = const time 4ns
  %x1 = const i32 3
  drv i1$ %en, %b1 after %t2
  drv i32$ %x, %x1 after %t2
  br %loop
loop:
  %i = phi i8 [%zero, %entry], [%in, %next]
  drv i1$ %clk, %b1 after %t2
  drv i1$ %clk, %b0 after %t4
  wait %next for %t4
next:
  %in = add i8 %i, %one
  %cont = ult i8 %in, %cycles
  br %cont, %end, %loop
end:
  halt
}
"""


def _parse():
    return parse_module(BEHAVIOURAL)


def test_comb_process_lowering_stages():
    """@acc_comb: ECM hoists, TCM coalesces into mux, PL yields an entity."""
    module = _parse()
    comb = module.get("acc_comb")

    ecm.run(comb)
    # ECM hoists %xp/%sum/%delay to the entry block (Figure 5a).
    entry = comb.entry
    ops_in_entry = [i.opcode for i in entry.instructions]
    assert "add" in ops_in_entry
    assert TemporalRegions(comb).count == 1

    tcm.run(comb)
    cleanup(comb)
    # All drvs now live in the single exiting block, coalesced into one.
    drvs = [i for i in comb.instructions() if i.opcode == "drv"]
    assert len(drvs) == 1
    assert drvs[0].drv_condition() is None
    # Value selected by a mux on %enp (Figure 5g).
    assert drvs[0].drv_value().opcode == "mux"

    tcfe.run(comb)
    cleanup(comb)
    assert len(comb.blocks) == 1

    assert process_lowering.can_lower(comb)
    entity = process_lowering.lower_process(module, comb)
    assert entity.is_entity
    verify_module(module)


def test_ff_process_desequentialization():
    """@acc_ff: TCM adds the aux block + condition; Deseq finds the reg."""
    module = _parse()
    ff = module.get("acc_ff")

    ecm.run(ff)
    assert TemporalRegions(ff).count == 2

    tcm.run(ff)
    cleanup(ff)
    # The drive moved out of %event and gained the %posedge condition
    # (Figure 5d).
    drv = next(i for i in ff.instructions() if i.opcode == "drv")
    assert drv.drv_condition() is not None

    tcfe.run(ff)
    cleanup(ff)
    assert len(ff.blocks) == 2
    assert TemporalRegions(ff).count == 2

    entity = deseq.desequentialize(module, ff)
    assert entity is not None
    regs = [i for i in entity.body if i.opcode == "reg"]
    assert len(regs) == 1
    triggers = list(regs[0].reg_triggers())
    assert len(triggers) == 1
    assert triggers[0]["mode"] == "rise"
    assert triggers[0]["trigger"].opcode == "prb"
    assert triggers[0]["delay"] is not None
    verify_module(module)


def test_full_pipeline_reaches_structural_level():
    module = _parse()
    module.remove("stim")
    module.remove("top")
    report = lower_to_structural(module)
    assert sorted(report.lowered_by_pl) == ["acc_comb"]
    assert report.lowered_by_deseq == ["acc_ff"]
    verify_module(module, level=STRUCTURAL)


def test_lowering_preserves_simulation_traces():
    """The pipeline's core guarantee: behavioural and structural
    simulations of the accumulator agree on every signal they share."""
    behavioural = _parse()
    structural = _parse()
    for name in ("acc_ff", "acc_comb"):
        proc = structural.get(name)
        from repro.passes.pipeline import _prepare_process

        _prepare_process(proc, structural)
    if process_lowering.can_lower(structural.get("acc_comb")):
        process_lowering.lower_process(
            structural, structural.get("acc_comb"))
    deseq.desequentialize(structural, structural.get("acc_ff"))
    verify_module(structural)

    ref = simulate(behavioural, "top")
    low = simulate(structural, "top")
    shared = ["top.q", "top.clk", "top.x", "top.en"]
    assert ref.trace.differences(low.trace, signals=shared) == []
    # The accumulator accumulated: q must be nonzero at the end.
    assert ref.trace.history("top.q")[-1][1] > 0


def test_inline_and_reg_feedback_reach_figure5_final_form():
    """Inline @acc_ff/@acc_comb into @acc and simplify: the paper's final
    form 'reg i32$ %q, %sum rise %clkp if %enp' (Figure 5, bottom right)."""
    module = _parse()
    module.remove("stim")
    module.remove("top")
    lower_to_structural(module)
    acc = module.get("acc")
    inline_entity_insts(module, acc)
    module.remove("acc_ff")
    module.remove("acc_comb")
    cleanup(acc)
    forward_signals(acc)
    cleanup(acc)
    simplify_reg_feedback(acc)
    cleanup(acc)
    verify_module(module, level=STRUCTURAL)

    regs = [i for i in acc.body if i.opcode == "reg"]
    assert len(regs) == 1
    trigger = next(regs[0].reg_triggers())
    assert trigger["mode"] == "rise"
    # The stored value is the sum, gated by %enp — not a mux any more.
    assert trigger["value"].opcode == "add"
    assert trigger["cond"] is not None
    text = print_module(module)
    assert "reg" in text and "mux" not in text
