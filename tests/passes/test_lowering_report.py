"""Tests for the non-strict lowering path and ``LoweringReport``.

``lower_to_structural(strict=False)`` must record — not raise — every
process it cannot lower, leave those processes in the module, and still
lower everything else.  The report also carries the pass manager's
per-pass instrumentation.
"""

import pytest

from repro.ir import STRUCTURAL, classify, parse_module, verify_module
from repro.passes import (
    LoweringRejection, PassManager, lower_to_structural,
)

ACC = """
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
event:
  %dp = prb i32$ %d
  %delay = const time 1ns
  drv i32$ %q, %dp after %delay
  br %init
}
proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
entry:
  %qp = prb i32$ %q
  %enp = prb i1$ %en
  %delay = const time 2ns
  drv i32$ %d, %qp after %delay
  br %enp, %final, %enabled
enabled:
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %d, %sum after %delay
  br %final
final:
  wait %entry for %q, %x, %en
}
"""

TESTBENCH = """
proc @tb (i1$ %clk) -> (i32$ %x) {
entry:
  %zero = const i32 0
  %del = const time 2ns
  drv i32$ %x, %zero after %del
  wait %done for %del
done:
  halt
}
"""


def test_strict_rejects_testbench():
    module = parse_module(TESTBENCH)
    with pytest.raises(LoweringRejection) as excinfo:
        lower_to_structural(module)
    assert excinfo.value.unit_name == "tb"
    assert "wait with a timeout" in excinfo.value.reason


def test_non_strict_records_rejection_and_keeps_process():
    module = parse_module(TESTBENCH)
    report = lower_to_structural(module, strict=False)
    assert len(report.rejected) == 1
    name, reason = report.rejected[0]
    assert name == "tb"
    assert "wait with a timeout" in reason
    # The process is left in the module (still behavioural).
    assert module.get("tb") is not None and module.get("tb").is_process


def test_non_strict_rejections_are_recorded_once():
    module = parse_module(TESTBENCH)
    report = lower_to_structural(module, strict=False)
    names = [name for name, _ in report.rejected]
    assert names.count("tb") == 1


def test_non_strict_still_lowers_the_rest():
    module = parse_module(ACC + TESTBENCH)
    report = lower_to_structural(module, strict=False)
    assert "acc_comb" in report.lowered_by_pl
    assert "acc_ff" in report.lowered_by_deseq
    assert [name for name, _ in report.rejected] == ["tb"]
    assert module.get("acc_comb").is_entity
    assert module.get("acc_ff").is_entity
    assert module.get("tb").is_process


def test_non_strict_clean_module_verifies_structural():
    module = parse_module(ACC)
    report = lower_to_structural(module, strict=False)
    assert report.rejected == []
    assert classify(module) == STRUCTURAL
    verify_module(module, level=STRUCTURAL)


def test_report_carries_pass_instrumentation():
    module = parse_module(ACC)
    report = lower_to_structural(module)
    names = {record.name for record in report.pass_records}
    assert {"cf", "instsimplify", "cse", "dce", "ecm", "tcm",
            "tcfe"} <= names
    assert all(record.seconds >= 0.0 for record in report.pass_records)
    assert report.analysis_stats["misses"] > 0
    # The shared cache must actually get hits across the pipeline.
    assert report.analysis_stats["hits"] > 0


def test_lowering_reuses_a_caller_pass_manager():
    module = parse_module(ACC)
    pm = PassManager()
    report = lower_to_structural(module, pm=pm)
    assert report.lowered_by_pl or report.lowered_by_deseq
    # Instrumentation landed in the caller's manager.
    assert pm.records and pm.records["cf"].runs > 0


def test_report_repr_mentions_outcomes():
    module = parse_module(ACC)
    report = lower_to_structural(module)
    text = repr(report)
    assert "acc_comb" in text and "acc_ff" in text


def test_design_vs_testbench_rejection_accounting():
    """The report classifies rejections: an `initial`-style testbench
    process does not count against the design, a design process does."""
    from repro.passes import LoweringReport

    testbench = TESTBENCH.replace("@tb", "@top_tb_initial_1")
    module = parse_module(ACC + testbench)
    report = lower_to_structural(module, strict=False)
    assert [n for n, _ in report.rejected] == ["top_tb_initial_1"]
    assert report.design_rejections() == []
    assert report.testbench_rejections() == report.rejected
    assert report.fully_lowered
    assert LoweringReport.is_testbench("top_tb_initial_1")
    assert not LoweringReport.is_testbench("dut_always_comb_1")


def test_design_rejection_counts_against_fully_lowered():
    source = """
    proc @dut_always_comb_1 (i8$ %n) -> (i8$ %y) {
    entry:
      %np = prb i8$ %n
      %t = const time 0s
      %zero = const i8 0
      %one = const i8 1
      br %head
    head:
      %i = phi i8 [%zero, %entry], [%next, %head]
      %next = add i8 %i, %one
      %more = ult i8 %next, %np
      br %more, %exit, %head
    exit:
      drv i8$ %y, %i after %t
      wait %entry for %n
    }
    """
    module = parse_module(source)
    report = lower_to_structural(module, strict=False, verify=False)
    assert not report.fully_lowered
    (name, reason), = report.design_rejections()
    assert name == "dut_always_comb_1"
    assert reason.startswith("unroll:")
