"""Runtime value helpers: path projection, signed helpers, defaults."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import LogicVec, parse_type_text
from repro.sim.values import (
    default_value, extract_path, from_signed, insert_path, to_signed,
)


@given(st.integers(0, 2**16 - 1))
def test_signed_roundtrip(value):
    assert from_signed(to_signed(value, 16), 16) == value


@given(st.integers(-2**15, 2**15 - 1))
def test_signed_range(value):
    assert to_signed(from_signed(value, 16), 16) == value


def test_default_values():
    assert default_value(parse_type_text("i8")) == 0
    assert default_value(parse_type_text("n4")) == 0
    assert default_value(parse_type_text("[3 x i2]")) == (0, 0, 0)
    assert default_value(parse_type_text("{i1, [2 x i2]}")) == (0, (0, 0))
    lv = default_value(parse_type_text("l4"))
    assert lv == LogicVec("UUUU")


@given(st.lists(st.integers(0, 255), min_size=4, max_size=4),
       st.integers(0, 3), st.integers(0, 255))
def test_field_insert_extract(values, index, new):
    agg = tuple(values)
    path = (("field", index),)
    updated = insert_path(agg, path, new)
    assert extract_path(updated, path) == new
    for i in range(4):
        if i != index:
            assert updated[i] == agg[i]


@given(st.integers(0, 2**32 - 1), st.integers(0, 24),
       st.integers(1, 8), st.integers(0, 255))
def test_int_slice_insert_extract(value, offset, length, new):
    new &= (1 << length) - 1
    path = (("slice", offset, length, "int"),)
    updated = insert_path(value, path, new)
    assert extract_path(updated, path) == new
    # Bits outside the slice are untouched.
    mask = ((1 << length) - 1) << offset
    assert (updated & ~mask) == (value & ~mask)


@given(st.text(alphabet="01XZ", min_size=8, max_size=8),
       st.integers(0, 4), st.integers(1, 4))
def test_logic_slice_extract_width(bits, offset, length):
    vec = LogicVec(bits)
    path = (("slice", offset, length, "logic"),)
    assert extract_path(vec, path).width == length


def test_logic_slice_bit_order():
    # MSB-first storage: bit 0 is the rightmost character.
    vec = LogicVec("0110")
    low = extract_path(vec, (("slice", 0, 2, "logic"),))
    high = extract_path(vec, (("slice", 2, 2, "logic"),))
    assert low.bits == "10"
    assert high.bits == "01"


def test_nested_paths():
    agg = ((1, 2), (3, 4))
    path = (("field", 1), ("field", 0))
    assert extract_path(agg, path) == 3
    updated = insert_path(agg, path, 9)
    assert updated == ((1, 2), (9, 4))


def test_array_slice():
    agg = (10, 20, 30, 40, 50)
    path = (("slice", 1, 3, "array"),)
    assert extract_path(agg, path) == (20, 30, 40)
    updated = insert_path(agg, path, (7, 8, 9))
    assert updated == (10, 7, 8, 9, 50)


def test_out_of_range_field_raises():
    from repro.sim.values import SimulationError

    with pytest.raises(SimulationError):
        extract_path((1, 2), (("field", 5),))
