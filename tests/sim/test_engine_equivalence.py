"""Cross-engine equivalence over the whole design suite.

The correctness oracle for the simulation layer: every design in
``src/repro/designs`` runs under the reference interpreter and the
compiled (Blaze) engine, and must produce *identical* traces, kernel
statistics, assertion results, and ``llhd.print`` output.  Both engines
share the event-driven kernel, so any divergence is an execution bug —
this is what lets the hot-path refactors evolve without silently
changing semantics.

The independent cycle scheduler is held to trace equivalence only (its
delta accounting legitimately differs); that is covered by
``test_cycle_equivalence`` and the Table 2 benchmark.

The differential fuzz tests extend the oracle with hostile stimulus: a
generated process is spliced into each design's top entity and drives
randomized values — including ``X``/``Z``/``L``/``H`` injections on
nine-valued nets — while all three engines must stay step-for-step
identical (testbench assertions may now fire; they must fire
identically).  A second generator builds closed random nine-valued
dataflow networks with multiple drivers per net, exercising the packed
AND/OR/XOR/NOT planes and the IEEE 1164 resolution path under every
scheduler.
"""

import random

import pytest

from repro.designs import (
    ALL_DESIGNS, DESIGNS, FOUR_STATE_ORDER, compile_design,
)
from repro.ir import Builder, Module, verify_module
from repro.ir.ninevalued import LogicVec, VALUES
from repro.ir.units import Entity, Process
from repro.ir.values import TimeValue
from repro.sim import simulate, simulate_batch
from repro.sim.stimulus import (
    design_driven_names, inject_batch_stimulus, inject_lane_stimulus,
    inject_stimulus, random_logic_text,
)
from repro.sim.values import SimulationError

# Small budgets shared with the staged semantic-preservation harness
# (see tests/designs/__init__.py).
from ..designs import SUITE_TEST_CYCLES as CYCLES  # noqa: E402


def _run(name, backend):
    module = compile_design(name, cycles=CYCLES[name])
    return simulate(module, DESIGNS[name].top, backend=backend)


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_interp_and_blaze_are_identical(name):
    interp = _run(name, "interp")
    blaze = _run(name, "blaze")
    assert interp.trace.finalize().changes == \
        blaze.trace.finalize().changes, \
        interp.trace.differences(blaze.trace)
    assert interp.stats == blaze.stats
    assert interp.assertion_failures == blaze.assertion_failures
    assert interp.output == blaze.output
    assert interp.final_time_fs == blaze.final_time_fs


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_cycle_traces_match(name):
    interp = _run(name, "interp")
    cycle = _run(name, "cycle")
    assert interp.trace.differences(cycle.trace) == []
    assert interp.assertion_failures == cycle.assertion_failures


# -- differential fuzz --------------------------------------------------------

BACKENDS = ("interp", "blaze", "cycle")

# The stimulus splicer lives in repro.sim.stimulus (shared with the CLI
# and the benchmark harness); inject_stimulus keeps the original
# single-rng semantics, so seeds reproduce historical runs byte for
# byte.


def _fuzz_run(module, top, backend):
    """Simulate, treating a SimulationError as part of the behaviour.

    Hostile stimulus can legally make a design hit a runtime error (an
    ``X`` reaching a dynamic index, say).  Message texts and the partial
    trace up to the failure differ legitimately between the interpreter
    and generated code, so an erroring run compares only as "errored" —
    the engines must agree on *whether* the stimulus is fatal.
    """
    try:
        return simulate(module, top, backend=backend)
    except SimulationError:
        return None


@pytest.mark.parametrize("seed", [0, 1])
@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_fuzzed_stimulus_keeps_engines_identical(name, seed):
    """All three engines agree on every design under injected stimulus."""
    results = {}
    for backend in BACKENDS:
        module = compile_design(name, cycles=CYCLES[name])
        injected = inject_stimulus(module, DESIGNS[name].top,
                                   seed=f"{name}:{seed}")
        assert injected, f"{name}: no injectable signals in top entity"
        verify_module(module)
        results[backend] = _fuzz_run(module, DESIGNS[name].top, backend)
    interp, blaze, cycle = (results[b] for b in BACKENDS)
    errored = [b for b in BACKENDS if results[b] is None]
    assert errored in ([], list(BACKENDS)), \
        f"{name}: only {errored} hit a runtime error"
    if errored:
        return
    assert interp.trace.finalize().changes == \
        blaze.trace.finalize().changes, \
        interp.trace.differences(blaze.trace)
    assert interp.stats == blaze.stats
    assert interp.trace.differences(cycle.trace) == []
    for other in (blaze, cycle):
        assert interp.assertion_failures == other.assertion_failures
        assert interp.output == other.output


def _random_logic_network(seed, n_sigs=4, n_ops=12, width=8, waves=8):
    """A closed random nine-valued dataflow design plus hostile stimulus.

    Two independent stimulus processes drive the same source nets, so the
    kernel's multi-driver IEEE 1164 resolution path runs on every wave;
    the entity computes a random AND/OR/XOR/NOT network over the sources
    into result nets.  Closed under nine-valued operations: no dynamic
    indexing, so no run can error and every trace compares in full.
    """
    rng = random.Random(seed)
    module = Module("fuzz")
    top = Entity("fuzz_top", (), (), (), ())
    module.add(top)
    b = Builder.at_end(top.body)
    init = b.const_logic("U" * width)
    sources = [b.sig(init, name=f"src{i}") for i in range(n_sigs)]
    values = [b.prb(s) for s in sources]
    delay = b.const_time(TimeValue(1_000_000))
    for i in range(n_ops):
        op = rng.choice(("and", "or", "xor", "not"))
        a = rng.choice(values)
        if op == "not":
            value = b.not_(a)
        else:
            value = b.binary(op, a, rng.choice(values))
        values.append(value)
        out = b.sig(init, name=f"out{i}")
        b.drv(out, value, delay)
    for proc_index in range(2):
        proc = Process(f"stim{proc_index}", (), (),
                       [s.type for s in sources],
                       [f"s{i}" for i in range(n_sigs)])
        module.add(proc)
        blocks = [proc.create_block(f"w{i}") for i in range(waves + 1)]
        pb = Builder.at_end(blocks[0])
        for wave, block in enumerate(blocks[:-1]):
            pb.set_insert_point(block)
            for target in rng.sample(proc.outputs, rng.randrange(1, n_sigs)):
                value = pb.const_logic(random_logic_text(rng, width))
                pb.drv(target, value,
                       pb.const_time(TimeValue(rng.randrange(1, 4) * 250_000)))
            pb.wait(blocks[wave + 1],
                    pb.const_time(TimeValue(rng.randrange(1, 4) * 1_000_000)),
                    [])
        pb.set_insert_point(blocks[-1])
        pb.halt()
        Builder.at_end(top.body).inst(proc, [], sources)
    verify_module(module)
    return module


# -- batched fuzz: N seeds as one K=N replicated pass --------------------------

BATCH_FUZZ_LANES = 4


@pytest.mark.parametrize("backend", ("interp", "blaze"))
@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_batched_fuzz_matches_per_lane_scalar_runs(name, backend):
    """N fuzz seeds as one K=N batched pass, demuxed and compared.

    Each lane's demuxed trace, print output, assertion failures, and
    finish time must be byte-identical to the scalar run of that lane's
    stimulus — the batch engine's correctness contract.  Seeds whose
    scalar run legally errors (hostile stimulus can reach a dynamic
    index with X) are dropped before batching; the surviving seeds run
    as one replicated-mode pass.
    """
    top = DESIGNS[name].top
    lane_seeds = [f"{name}:{k}" for k in range(BATCH_FUZZ_LANES)]
    refs = []
    for lane_seed in lane_seeds:
        module = compile_design(name, cycles=CYCLES[name])
        if not inject_lane_stimulus(module, top, name, lane_seed):
            pytest.skip(f"{name}: no injectable input nets")
        refs.append((lane_seed, _fuzz_run(module, top, backend)))
    good = [(s, r) for s, r in refs if r is not None]
    if len(good) < 2:
        pytest.skip(f"{name}: fewer than two non-erroring fuzz seeds")
    module = compile_design(name, cycles=CYCLES[name])
    stimulus = inject_batch_stimulus(module, top, name,
                                     [s for s, _ in good])
    assert stimulus is not None
    verify_module(module)
    batch = simulate_batch(module, top, len(good), backend=backend,
                           stimulus=stimulus)
    assert batch.mode == "replicated"
    for k, (lane_seed, ref) in enumerate(good):
        lane = batch.lane(k)
        assert ref.trace.differences(lane.trace) == [], \
            f"lane {k} ({lane_seed}): {ref.trace.differences(lane.trace)[:4]}"
        assert ref.output == lane.output, f"lane {k} ({lane_seed})"
        assert ref.assertion_failures == lane.assertion_failures, \
            f"lane {k} ({lane_seed})"
        assert ref.final_time_fs == lane.final_time_fs, \
            f"lane {k} ({lane_seed})"


# -- differential fuzz across the lowering pipeline ---------------------------


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_fuzzed_stimulus_survives_lowering_to_netlist(name):
    """The X/Z differential splicer, pushed through the full ``lower``
    pipeline and the technology mapper: under hostile nine-valued
    stimulus on the design's input nets (X/Z/W/L/H injections —
    including on clocks), the netlist-level design must trace-match the
    behavioural run.  This is what pins the X-aware ``reg`` edge
    semantics of the lowered registers to the behavioural eq/not/and
    edge detectors.

    Two-valued designs are comparable too: an ``iN`` net with several
    same-instant drivers has no resolution function, but since
    conflicting matured values now raise a deterministic drive-conflict
    error (naming both drivers), behavioural and netlist runs must agree
    on fatality rather than silently letting a driver-order-dependent
    winner through — the same "errored" contract ``_fuzz_run`` applies
    everywhere else.  Agreeing same-instant drivers remain legal on both
    sides.  Nine-valued collisions still resolve commutatively under
    IEEE 1164.

    The stimulus runs a quarter period off the testbenches' 500ps time
    grid (``phase_fs``): an input transition in the same femtosecond as
    a clock edge makes the registered view of that input scheduler-
    dependent, which no lowering can (or should) preserve.
    """
    from repro.interop import netlist_design
    from repro.passes import lower_to_structural

    seed = f"{name}:lower"
    phase = 250_000
    behavioural = compile_design(name, cycles=CYCLES[name])
    exclude = design_driven_names(behavioural, DESIGNS[name].top)
    if not inject_stimulus(behavioural, DESIGNS[name].top, seed=seed,
                            exclude_names=exclude, phase_fs=phase):
        pytest.skip(f"{name}: no injectable input nets")
    verify_module(behavioural)
    ref = _fuzz_run(behavioural, DESIGNS[name].top, "interp")

    # Same compile + same seed = byte-identical module; the stimulus is
    # injected *before* lowering and rides through the pipeline like any
    # other testbench process (rejected by deseq/PL, left behavioural).
    lowered = compile_design(name, cycles=CYCLES[name])
    assert inject_stimulus(lowered, DESIGNS[name].top, seed=seed,
                            exclude_names=exclude, phase_fs=phase)
    lower_to_structural(lowered, strict=False, verify=False)
    linked = netlist_design(lowered)
    low = _fuzz_run(linked, DESIGNS[name].top, "interp")

    # The engines must agree on whether the stimulus is fatal, and on
    # the full trace when it is not.
    assert (ref is None) == (low is None), \
        f"{name}: only one of behavioural/netlist hit a runtime error"
    if ref is None:
        return
    active = ref.trace.live_signals()
    assert active <= set(low.trace.finalize().changes), \
        f"{name}: live signals dropped at netlist level"
    assert ref.trace.differences(low.trace) == []
    assert ref.assertion_failures == low.assertion_failures


@pytest.mark.parametrize("seed", range(6))
def test_random_nine_valued_networks_agree(seed):
    """Random packed-logic networks match across all three schedulers."""
    runs = {}
    for backend in BACKENDS:
        module = _random_logic_network(seed)
        runs[backend] = simulate(module, "fuzz_top", backend=backend)
    interp = runs["interp"]
    assert interp.trace.finalize().changes == \
        runs["blaze"].trace.finalize().changes, \
        interp.trace.differences(runs["blaze"].trace)
    assert interp.stats == runs["blaze"].stats
    assert interp.trace.differences(runs["cycle"].trace) == []
    # The nets carry genuinely nine-valued traffic, not just 0/1.
    exotic = set()
    for _, history in interp.trace.finalize().changes.items():
        for _, value in history:
            exotic.update(str(value))
    assert exotic & set("XZLHWU-"), "stimulus never injected unknowns"
