"""Cross-engine equivalence over the whole design suite.

The correctness oracle for the simulation layer: every design in
``src/repro/designs`` runs under the reference interpreter and the
compiled (Blaze) engine, and must produce *identical* traces, kernel
statistics, assertion results, and ``llhd.print`` output.  Both engines
share the event-driven kernel, so any divergence is an execution bug —
this is what lets the hot-path refactors evolve without silently
changing semantics.

The independent cycle scheduler is held to trace equivalence only (its
delta accounting legitimately differs); that is covered by
``test_cycle_equivalence`` and the Table 2 benchmark.
"""

import pytest

from repro.designs import DESIGNS, TABLE2_ORDER, compile_design
from repro.sim import simulate

# Small budgets: enough cycles for every testbench to exercise its
# self-checks without making the interpreter runs slow.
CYCLES = {
    "gray": 30, "fir": 20, "lfsr": 30, "lzc": 20, "fifo": 30,
    "cdc_gray": 25, "cdc_strobe": 12, "rr_arbiter": 30,
    "stream_delayer": 30, "riscv": 150, "sorter": 6,
}


def _run(name, backend):
    module = compile_design(name, cycles=CYCLES[name])
    return simulate(module, DESIGNS[name].top, backend=backend)


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_interp_and_blaze_are_identical(name):
    interp = _run(name, "interp")
    blaze = _run(name, "blaze")
    assert interp.trace.finalize().changes == \
        blaze.trace.finalize().changes, \
        interp.trace.differences(blaze.trace)
    assert interp.stats == blaze.stats
    assert interp.assertion_failures == blaze.assertion_failures
    assert interp.output == blaze.output
    assert interp.final_time_fs == blaze.final_time_fs


@pytest.mark.parametrize("name", TABLE2_ORDER)
def test_cycle_traces_match(name):
    interp = _run(name, "interp")
    cycle = _run(name, "cycle")
    assert interp.trace.differences(cycle.trace) == []
    assert interp.assertion_failures == cycle.assertion_failures
