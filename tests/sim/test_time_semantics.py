"""Time model: (fs, delta, epsilon) ordering and scheduling semantics."""

from hypothesis import given, strategies as st

from repro.ir import TimeValue
from repro.sim import advance_time

times = st.tuples(st.integers(0, 10**9), st.integers(0, 5),
                  st.integers(0, 5))
delays = st.builds(TimeValue, st.integers(0, 10**6), st.integers(0, 3),
                   st.integers(0, 3))


@given(times, delays)
def test_advance_never_goes_backwards(now, delay):
    assert advance_time(now, delay) > now


@given(times)
def test_zero_delay_is_next_delta(now):
    result = advance_time(now, TimeValue(0))
    assert result == (now[0], now[1] + 1, 0)


@given(times)
def test_physical_delay_resets_delta(now):
    result = advance_time(now, TimeValue(1000))
    assert result == (now[0] + 1000, 0, 0)


@given(times)
def test_epsilon_stays_in_delta(now):
    result = advance_time(now, TimeValue(0, 0, 1))
    assert result[0] == now[0]
    assert result[1] == now[1]
    assert result[2] == now[2] + 1


def test_time_parse_units():
    assert TimeValue.parse("1ns").fs == 1_000_000
    assert TimeValue.parse("2us").fs == 2_000_000_000
    assert TimeValue.parse("1.5ns").fs == 1_500_000
    assert TimeValue.parse("3ps").fs == 3_000
    assert TimeValue.parse("0s").fs == 0


def test_time_format_minimal_unit():
    assert str(TimeValue(2_000_000)) == "2ns"
    assert str(TimeValue(1_500_000)) == "1500ps"
    assert str(TimeValue(0)) == "0s"
    assert str(TimeValue(0, 1, 0)) == "0s 1d"
    assert str(TimeValue(0, 1, 2)) == "0s 1d 2e"


@given(st.integers(0, 10**15))
def test_format_parse_roundtrip(fs):
    from repro.ir.values import format_fs

    assert TimeValue.parse(format_fs(fs)).fs == fs


def test_delta_cycles_order_drives():
    """Two zero-delay drives chained through processes settle in
    successive deltas of the same femtosecond."""
    from repro.ir import parse_module
    from repro.sim import simulate

    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %a = sig i8 %z
      %b = sig i8 %z
      inst @first () -> (i8$ %a)
      inst @second (i8$ %a) -> (i8$ %b)
    }
    proc @first () -> (i8$ %a) {
    entry:
      %v = const i8 5
      %t = const time 0s
      drv i8$ %a, %v after %t
      halt
    }
    proc @second (i8$ %a) -> (i8$ %b) {
    entry:
      wait %woke for %a
    woke:
      %ap = prb i8$ %a
      %t = const time 0s
      drv i8$ %b, %ap after %t
      halt
    }
    """)
    result = simulate(module, "top")
    # All at fs=0, across delta cycles.
    assert result.trace.value_at("top.a", 0) == 5
    assert result.trace.value_at("top.b", 0) == 5
    assert result.final_time_fs == 0
