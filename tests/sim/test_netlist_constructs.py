"""Netlist constructs in simulation: con (net merging) and del (delayed
signal following)."""

import pytest

from repro.ir import parse_module
from repro.sim import simulate


def test_con_merges_nets():
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %a = sig i8 %z
      %b = sig i8 %z
      con i8$ %a, %b
      inst @driver () -> (i8$ %a)
      inst @watcher (i8$ %b) -> ()
    }
    proc @driver () -> (i8$ %a) {
    entry:
      %v = const i8 55
      %t = const time 1ns
      drv i8$ %a, %v after %t
      halt
    }
    proc @watcher (i8$ %b) -> () {
    entry:
      wait %woke for %b
    woke:
      %bp = prb i8$ %b
      %want = const i8 55
      %ok = eq i8 %bp, %want
      call void @llhd.assert (i1 %ok)
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.ok()
    # Driving %a is visible on %b: same net.
    assert result.trace.value_at("top.a", 1_000_000) == 55


def test_del_follows_with_delay():
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %src = sig i8 %z
      %t3 = const time 3ns
      %delayed = del i8$ %src after %t3
      inst @driver () -> (i8$ %src)
    }
    proc @driver () -> (i8$ %src) {
    entry:
      %v = const i8 7
      %t = const time 2ns
      drv i8$ %src, %v after %t
      halt
    }
    """)
    result = simulate(module, "top")
    # src changes at 2ns; the delayed copy at 5ns.
    assert result.trace.value_at("top.src", 2_000_000) == 7
    history = dict(result.trace.history("top.delayed"))
    assert history.get(5_000_000) == 7
    assert result.trace.value_at("top.delayed", 4_999_999) == 0


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
def test_con_del_agree_across_backends(backend):
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %a = sig i8 %z
      %b = sig i8 %z
      %t2 = const time 2ns
      con i8$ %a, %b
      %d = del i8$ %b after %t2
      inst @driver () -> (i8$ %a)
    }
    proc @driver () -> (i8$ %a) {
    entry:
      %v1 = const i8 1
      %v2 = const i8 9
      %t1 = const time 1ns
      %t4 = const time 4ns
      drv i8$ %a, %v1 after %t1
      drv i8$ %a, %v2 after %t4
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    assert result.trace.value_at("top.d", 3_000_000) == 1
    assert result.trace.value_at("top.d", 6_000_000) == 9


def test_nine_valued_multi_driver_resolution():
    """Two drivers on one l1 net resolve per IEEE 1164 (0 vs Z -> 0)."""
    module = parse_module("""
    entity @top () -> () {
      %z = const l1 "Z"
      %net = sig l1 %z
      inst @d0 () -> (l1$ %net)
      inst @d1 () -> (l1$ %net)
    }
    proc @d0 () -> (l1$ %net) {
    entry:
      %v = const l1 "0"
      %t = const time 1ns
      drv l1$ %net, %v after %t
      halt
    }
    proc @d1 () -> (l1$ %net) {
    entry:
      %v = const l1 "Z"
      %t = const time 1ns
      drv l1$ %net, %v after %t
      halt
    }
    """)
    from repro.ir import LogicVec

    result = simulate(module, "top")
    assert result.trace.value_at("top.net", 1_000_000) == LogicVec("0")


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
def test_reg_nine_valued_clock_fires_first_edge(backend):
    """A reg clocked by an l1 net must latch on the *first* rising edge.

    Regression: the reg's previous-trigger state was initialized with
    the raw LogicVec while later samples were normalized to 0/1 levels,
    so LogicVec("0") == 0 compared false and the first edge was lost.
    """
    module = parse_module("""
    entity @top () -> () {
      %zc = const l1 "0"
      %zq = const l8 "00000000"
      %clk = sig l1 %zc
      %q = sig l8 %zq
      %clkp = prb l1$ %clk
      %d = const l8 "10101010"
      %eps = const time 1e
      reg l8$ %q, %d rise %clkp after %eps
      inst @clocker () -> (l1$ %clk)
    }
    proc @clocker () -> (l1$ %clk) {
    entry:
      %one = const l1 "1"
      %t1 = const time 1ns
      drv l1$ %clk, %one after %t1
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    # The first (and only) rising edge at 1ns latches d into q.
    assert result.trace.value_at("top.q", 1_000_000) is not None
    assert str(result.trace.value_at("top.q", 1_000_000)) == "10101010"


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
def test_reg_x_to_one_counts_as_rising_edge(backend):
    """An X -> 1 clock transition is a rising edge (IEEE 1800)."""
    module = parse_module("""
    entity @top () -> () {
      %zc = const l1 "X"
      %zq = const l4 "0000"
      %clk = sig l1 %zc
      %q = sig l4 %zq
      %clkp = prb l1$ %clk
      %d = const l4 "1111"
      %eps = const time 1e
      reg l4$ %q, %d rise %clkp after %eps
      inst @clocker () -> (l1$ %clk)
    }
    proc @clocker () -> (l1$ %clk) {
    entry:
      %one = const l1 "1"
      %t1 = const time 1ns
      drv l1$ %clk, %one after %t1
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    assert str(result.trace.value_at("top.q", 1_000_000)) == "1111"


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
def test_reg_multibit_logic_trigger_matches_int_semantics(backend):
    """A two-valued lN trigger wider than one bit levels like iN.

    Rise fires on a value-0 -> value-1 transition of the whole vector,
    exactly as an i8 trigger would (a 2 -> 1 transition is NOT a rising
    edge); unknown bits still match no edge.
    """
    module = parse_module("""
    entity @top () -> () {
      %zt = const l8 "00000000"
      %zq = const l4 "0000"
      %trig = sig l8 %zt
      %q = sig l4 %zq
      %tp = prb l8$ %trig
      %d = const l4 "1111"
      %eps = const time 1e
      reg l4$ %q, %d rise %tp after %eps
      inst @driver () -> (l8$ %trig)
    }
    proc @driver () -> (l8$ %trig) {
    entry:
      %one = const l8 "00000001"
      %t1 = const time 1ns
      drv l8$ %trig, %one after %t1
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    assert str(result.trace.value_at("top.q", 1_000_000)) == "1111"


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
def test_reg_multibit_two_to_one_is_not_a_rising_edge(backend):
    module = parse_module("""
    entity @top () -> () {
      %zt = const l8 "00000010"
      %zq = const l4 "0000"
      %trig = sig l8 %zt
      %q = sig l4 %zq
      %tp = prb l8$ %trig
      %d = const l4 "1111"
      %eps = const time 1e
      reg l4$ %q, %d rise %tp after %eps
      inst @driver () -> (l8$ %trig)
    }
    proc @driver () -> (l8$ %trig) {
    entry:
      %one = const l8 "00000001"
      %t1 = const time 1ns
      drv l8$ %trig, %one after %t1
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    # 2 -> 1 is not prev==0 -> cur==1: no latch, q keeps its initial value.
    assert str(result.trace.value_at("top.q", 2_000_000)) == "0000"
