"""The compiled (Blaze) simulator must produce traces identical to the
reference interpreter — the compiled analogue of the paper's "traces match
between the two simulators for all designs" (Table 2)."""

import pytest

from repro.ir import parse_module
from repro.sim import simulate

TESTBENCH_WITH_LOOP = """
entity @top () -> () {
  %z1 = const i1 0
  %z8 = const i8 0
  %clk = sig i1 %z1
  %count = sig i8 %z8
  inst @clockgen () -> (i1$ %clk)
  inst @counter (i1$ %clk) -> (i8$ %count)
}
proc @clockgen () -> (i1$ %clk) {
entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %zero = const i8 0
  %limit = const i8 20
  %one = const i8 1
  %t1 = const time 1ns
  %i = var i8 %zero
  br %loop
loop:
  drv i1$ %clk, %b1 after %t1
  wait %fall for %t1
fall:
  drv i1$ %clk, %b0 after %t1
  wait %next for %t1
next:
  %ip = ld i8* %i
  %in = add i8 %ip, %one
  st i8* %i, %in
  %cont = ult i8 %in, %limit
  br %cont, %end, %loop
end:
  halt
}
proc @counter (i1$ %clk) -> (i8$ %count) {
init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
event:
  %cp = prb i8$ %count
  %one8 = const i8 1
  %cn = add i8 %cp, %one8
  %t0 = const time 0s
  drv i8$ %count, %cn after %t0
  br %init
}
"""

ENTITY_DESIGN = """
entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
  %delay = const time 1ns
  %clkp = prb i1$ %clk
  %dp = prb i32$ %d
  reg i32$ %q, %dp rise %clkp after %delay
}
entity @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
  %qp = prb i32$ %q
  %xp = prb i32$ %x
  %enp = prb i1$ %en
  %sum = add i32 %qp, %xp
  %delay = const time 2ns
  %dns = [i32 %qp, %sum]
  %dn = mux i32 %dns, %enp
  drv i32$ %d, %dn after %delay
}
entity @top () -> () {
  %z1 = const i1 0
  %z32 = const i32 0
  %b1c = const i1 1
  %clk = sig i1 %z1
  %x = sig i32 %z32
  %en = sig i1 %z1
  %d = sig i32 %z32
  %q = sig i32 %z32
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q)
  inst @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d)
  inst @stim () -> (i1$ %clk, i32$ %x, i1$ %en)
}
proc @stim () -> (i1$ %clk, i32$ %x, i1$ %en) {
entry:
  %b0 = const i1 0
  %b1 = const i1 1
  %zero = const i32 0
  %three = const i32 3
  %seven = const i32 7
  %t2 = const time 2ns
  %t4 = const time 4ns
  drv i1$ %en, %b1 after %t2
  drv i32$ %x, %three after %t2
  br %cycle1
cycle1:
  drv i1$ %clk, %b1 after %t2
  wait %cycle2 for %t4
cycle2:
  drv i1$ %clk, %b0 after %t2
  drv i32$ %x, %seven after %t2
  drv i1$ %clk, %b1 after %t4
  wait %done for %t4
done:
  halt
}
"""

PHI_AND_FUNCTION = """
func @sum_to (i32 %n) i32 {
entry:
  %zero = const i32 0
  %one = const i32 1
  br %loop
loop:
  %i = phi i32 [%zero, %entry], [%in, %loop]
  %acc = phi i32 [%zero, %entry], [%accn, %loop]
  %accn = add i32 %acc, %i
  %in = add i32 %i, %one
  %cont = ule i32 %in, %n
  br %cont, %exit, %loop
exit:
  ret i32 %accn
}
entity @top () -> () {
  %z = const i32 0
  %out = sig i32 %z
  inst @driver () -> (i32$ %out)
}
proc @driver () -> (i32$ %out) {
entry:
  %n = const i32 10
  %r = call i32 @sum_to (i32 %n)
  %t = const time 1ns
  drv i32$ %out, %r after %t
  halt
}
"""


@pytest.mark.parametrize("text,top", [
    (TESTBENCH_WITH_LOOP, "top"),
    (ENTITY_DESIGN, "top"),
    (PHI_AND_FUNCTION, "top"),
], ids=["loop-testbench", "reg-mux-entities", "phi-function"])
def test_blaze_matches_interp(text, top):
    module = parse_module(text)
    interp = simulate(module, top, backend="interp")
    blaze = simulate(module, top, backend="blaze")
    assert interp.trace.differences(blaze.trace) == []
    assert interp.final_time_fs == blaze.final_time_fs


def test_blaze_counter_counts():
    module = parse_module(TESTBENCH_WITH_LOOP)
    result = simulate(module, "top", backend="blaze")
    # 20 clock cycles -> counter reaches 20.
    final = result.trace.history("top.count")[-1][1]
    assert final == 20


def test_blaze_function_result():
    module = parse_module(PHI_AND_FUNCTION)
    result = simulate(module, "top", backend="blaze")
    # sum of 0..10 = 55
    assert result.trace.value_at("top.out", 1_000_000) == 55


def test_blaze_is_faster_than_interp_on_long_run():
    """Sanity check of the performance direction (not a benchmark).

    Uses a long run (200 clock cycles) so steady-state execution, not
    one-time unit compilation, dominates the comparison — mirroring how
    the paper extrapolates Table 2 to millions of cycles.
    """
    import time

    module = parse_module(TESTBENCH_WITH_LOOP.replace(
        "const i8 20", "const i8 200"))

    def run(backend):
        start = time.perf_counter()
        simulate(module, "top", backend=backend)
        return time.perf_counter() - start

    run("blaze")  # warm compile path
    interp_time = min(run("interp") for _ in range(3))
    blaze_time = min(run("blaze") for _ in range(3))
    # Generous margin: compiled execution must not be slower.
    assert blaze_time < interp_time * 1.5
