"""The ``python -m repro.sim`` command-line driver (llhd-sim analogue)."""

import pytest

from repro.sim.__main__ import main, parse_time_fs

ACC = """
entity @top () -> () {
  %z = const i8 0
  %s = sig i8 %z
  inst @driver () -> (i8$ %s)
}
proc @driver () -> (i8$ %s) {
entry:
  %v = const i8 42
  %t = const time 3ns
  drv i8$ %s, %v after %t
  halt
}
"""


@pytest.fixture()
def design_file(tmp_path):
    path = tmp_path / "design.llhd"
    path.write_text(ACC)
    return str(path)


def test_parse_time_fs():
    assert parse_time_fs("2500") == 2500
    assert parse_time_fs("3ns") == 3_000_000
    assert parse_time_fs("1.5ps") == 1500
    assert parse_time_fs("1us") == 1_000_000_000


def test_simulate_file_with_stats_and_trace(design_file, capsys):
    assert main([design_file, "--stats", "--trace"]) == 0
    captured = capsys.readouterr()
    assert "3000000fs top.s = 42" in captured.out
    assert "deltas" in captured.err


def test_top_is_inferred_for_single_entity(design_file, capsys):
    assert main([design_file]) == 0


def test_vcd_export(design_file, tmp_path):
    vcd = tmp_path / "out.vcd"
    assert main([design_file, "--vcd", str(vcd)]) == 0
    text = vcd.read_text()
    assert "$timescale 1fs $end" in text
    assert "#3000000" in text


def test_named_design_cross_check(capsys):
    assert main(["--design", "gray", "--cycles", "8",
                 "--cross-check"]) == 0
    captured = capsys.readouterr()
    assert "traces identical" in captured.err


def test_list_designs(capsys):
    assert main(["--list-designs"]) == 0
    out = capsys.readouterr().out
    assert "riscv" in out and "sorter" in out


def test_unknown_design_errors():
    with pytest.raises(SystemExit):
        main(["--design", "nonesuch"])


def test_until_limits_simulation(design_file, capsys):
    assert main([design_file, "--until", "1ns", "--trace"]) == 0
    out = capsys.readouterr().out
    assert "42" not in out
