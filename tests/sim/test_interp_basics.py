"""Interpreter basics: drives, delta cycles, waits, entities, registers."""

import pytest

from repro.ir import parse_module
from repro.sim import SimulationError, simulate


def test_process_drives_signal_with_delay():
    module = parse_module("""
    entity @top () -> () {
      %zero = const i8 0
      %s = sig i8 %zero
      inst @driver () -> (i8$ %s)
    }
    proc @driver () -> (i8$ %s) {
    entry:
      %v = const i8 42
      %t = const time 3ns
      drv i8$ %s, %v after %t
      halt
    }
    """)
    result = simulate(module, "top")
    history = result.trace.history("top.s")
    assert history == [(0, 0), (3_000_000, 42)]


def test_zero_delay_drive_lands_next_delta_same_fs():
    module = parse_module("""
    entity @top () -> () {
      %zero = const i8 0
      %s = sig i8 %zero
      inst @driver () -> (i8$ %s)
    }
    proc @driver () -> (i8$ %s) {
    entry:
      %v = const i8 7
      %t = const time 0s
      drv i8$ %s, %v after %t
      halt
    }
    """)
    result = simulate(module, "top")
    # The trace collapses intra-instant deltas: fs=0 ends with value 7.
    assert result.trace.history("top.s") == [(0, 7)]
    assert result.trace.value_at("top.s", 0) == 7


def test_transport_delay_cancels_later_pending():
    # Drive 1 at 5ns then (still at t=0) drive 2 at 3ns: the 3ns transaction
    # cancels the pending 5ns one (transport-delay model).
    module = parse_module("""
    entity @top () -> () {
      %zero = const i8 0
      %s = sig i8 %zero
      inst @driver () -> (i8$ %s)
    }
    proc @driver () -> (i8$ %s) {
    entry:
      %one = const i8 1
      %two = const i8 2
      %t5 = const time 5ns
      %t3 = const time 3ns
      drv i8$ %s, %one after %t5
      drv i8$ %s, %two after %t3
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.trace.history("top.s") == [(0, 0), (3_000_000, 2)]


def test_two_scheduled_edges_both_apply():
    # Figure 2 pattern: clk <= 1 after 1ns; clk <= 0 after 2ns.
    module = parse_module("""
    entity @top () -> () {
      %zero = const i1 0
      %clk = sig i1 %zero
      inst @driver () -> (i1$ %clk)
    }
    proc @driver () -> (i1$ %clk) {
    entry:
      %b0 = const i1 0
      %b1 = const i1 1
      %t1 = const time 1ns
      %t2 = const time 2ns
      drv i1$ %clk, %b1 after %t1
      drv i1$ %clk, %b0 after %t2
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.trace.history("top.clk") == [
        (0, 0), (1_000_000, 1), (2_000_000, 0)]


def test_wait_timeout_resumes_process():
    module = parse_module("""
    entity @top () -> () {
      %zero = const i8 0
      %s = sig i8 %zero
      inst @driver () -> (i8$ %s)
    }
    proc @driver () -> (i8$ %s) {
    entry:
      %t = const time 4ns
      %v1 = const i8 1
      %v2 = const i8 2
      %zt = const time 0s
      drv i8$ %s, %v1 after %zt
      wait %after for %t
    after:
      drv i8$ %s, %v2 after %zt
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.trace.history("top.s") == [(0, 1), (4_000_000, 2)]


def test_wait_on_signal_change_wakes_process():
    module = parse_module("""
    entity @top () -> () {
      %zero = const i8 0
      %a = sig i8 %zero
      %b = sig i8 %zero
      inst @producer () -> (i8$ %a)
      inst @follower (i8$ %a) -> (i8$ %b)
    }
    proc @producer () -> (i8$ %a) {
    entry:
      %v = const i8 9
      %t = const time 5ns
      drv i8$ %a, %v after %t
      halt
    }
    proc @follower (i8$ %a) -> (i8$ %b) {
    entry:
      wait %woke for %a
    woke:
      %ap = prb i8$ %a
      %zt = const time 0s
      drv i8$ %b, %ap after %zt
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.trace.value_at("top.b", 5_000_000) == 9


def test_entity_reg_rising_edge():
    """The Figure 5 structural accumulator: reg stores on posedge."""
    module = parse_module("""
    entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
      %delay = const time 1ns
      %clkp = prb i1$ %clk
      %dp = prb i32$ %d
      reg i32$ %q, %dp rise %clkp after %delay
    }
    entity @top () -> () {
      %zero1 = const i1 0
      %zero32 = const i32 0
      %clk = sig i1 %zero1
      %d = sig i32 %zero32
      %q = sig i32 %zero32
      inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q)
      inst @stim () -> (i1$ %clk, i32$ %d)
    }
    proc @stim () -> (i1$ %clk, i32$ %d) {
    entry:
      %b0 = const i1 0
      %b1 = const i1 1
      %v = const i32 77
      %t2 = const time 2ns
      %t4 = const time 4ns
      %t6 = const time 6ns
      drv i32$ %d, %v after %t2
      drv i1$ %clk, %b1 after %t4
      drv i1$ %clk, %b0 after %t6
      halt
    }
    """)
    result = simulate(module, "top")
    # Posedge at 4ns stores d=77, visible on q after the 1ns reg delay.
    assert result.trace.value_at("top.q", 3_999_999) == 0
    assert result.trace.value_at("top.q", 5_000_000) == 77


def test_entity_combinational_mux():
    """Figure 5 @acc_comb as an entity: drv re-fires when inputs change."""
    module = parse_module("""
    entity @comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
      %qp = prb i32$ %q
      %xp = prb i32$ %x
      %enp = prb i1$ %en
      %sum = add i32 %qp, %xp
      %delay = const time 2ns
      %dns = [i32 %qp, %sum]
      %dn = mux i32 %dns, %enp
      drv i32$ %d, %dn after %delay
    }
    entity @top () -> () {
      %z32 = const i32 0
      %z1 = const i1 0
      %q = sig i32 %z32
      %x = sig i32 %z32
      %en = sig i1 %z1
      %d = sig i32 %z32
      inst @comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d)
      inst @stim () -> (i32$ %q, i32$ %x, i1$ %en)
    }
    proc @stim () -> (i32$ %q, i32$ %x, i1$ %en) {
    entry:
      %five = const i32 5
      %three = const i32 3
      %b1 = const i1 1
      %t1 = const time 1ns
      %t5 = const time 5ns
      drv i32$ %q, %five after %t1
      drv i32$ %x, %three after %t1
      drv i1$ %en, %b1 after %t5
      halt
    }
    """)
    result = simulate(module, "top")
    # en=0: d follows q (after 2ns comb delay).
    assert result.trace.value_at("top.d", 3_000_000) == 5
    # en=1 at 5ns: d becomes q+x at 7ns.
    assert result.trace.value_at("top.d", 7_000_000) == 8


def test_assertion_failure_is_recorded():
    module = parse_module("""
    entity @top () -> () {
      inst @checker () -> ()
    }
    proc @checker () -> () {
    entry:
      %zero = const i1 0
      call void @llhd.assert (i1 %zero)
      halt
    }
    """)
    result = simulate(module, "top")
    assert not result.ok()
    assert "assertion failed" in result.assertion_failures[0]


def test_function_call_from_process():
    module = parse_module("""
    func @double (i32 %x) i32 {
    entry:
      %two = const i32 2
      %r = mul i32 %x, %two
      ret i32 %r
    }
    entity @top () -> () {
      %zero = const i32 0
      %s = sig i32 %zero
      inst @driver () -> (i32$ %s)
    }
    proc @driver () -> (i32$ %s) {
    entry:
      %v = const i32 21
      %r = call i32 @double (i32 %v)
      %t = const time 1ns
      drv i32$ %s, %r after %t
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.trace.value_at("top.s", 1_000_000) == 42


def test_division_by_zero_raises():
    module = parse_module("""
    entity @top () -> () {
      inst @bad () -> ()
    }
    proc @bad () -> () {
    entry:
      %zero = const i32 0
      %one = const i32 1
      %r = div i32 %one, %zero
      halt
    }
    """)
    with pytest.raises(SimulationError, match="division by zero"):
        simulate(module, "top")
