"""Levelized netlist engine: edge cases the suite designs under-cover.

The 22-design staged harness (test_semantic_preservation) already holds
the levelized engine to byte-identical traces at the netlist level; the
tests here pin down the corners: latch cells, register-cut feedback,
multi-clock-domain cones, zero-delay combinational cycles, per-cell
event-driven fallbacks, the multi-driver diagnosis, and the on-disk
compile cache (cold/warm/corrupted/stale).
"""

import pytest

from repro.ir import parse_module
from repro.sim import SimulationError, simulate
from repro.sim.compiled import ENGINE_VERSION, cone_cache_key
from repro.sim.levelize import elaborate_levelized

# A transparent-high latch cell: the storage cell techmap emits for a
# level-sensitive reg (mode ``high`` fires on every evaluation while
# the enable is high).
_LATCH = """
entity @cell_latch_i8 (i8$ %d0, i1$ %t0) -> (i8$ %q) {
  %0 = prb i8$ %d0
  %1 = prb i1$ %t0
  %2 = const time 0s
  reg i8$ %q, %0 high %1 after %2
}

proc @stim () -> (i8$ %d, i1$ %en) {
b0:
  %t = const time 1ns
  %t0 = const time 0s
  %one = const i1 1
  %zero = const i1 0
  %v1 = const i8 17
  %v2 = const i8 42
  %v3 = const i8 99
  drv i8$ %d, %v1 after %t0
  drv i1$ %en, %one after %t0
  wait %b1 for %t
b1:
  drv i8$ %d, %v2 after %t0
  wait %b2 for %t
b2:
  drv i1$ %en, %zero after %t0
  wait %b3 for %t
b3:
  drv i8$ %d, %v3 after %t0
  wait %b4 for %t
b4:
  halt
}

entity @top () -> () {
  %z8 = const i8 0
  %z1 = const i1 0
  %d = sig i8 %z8
  %en = sig i1 %z1
  %q = sig i8 %z8
  inst @cell_latch_i8 (i8$ %d, i1$ %en) -> (i8$ %q)
  inst @stim () -> (i8$ %d, i1$ %en)
}
"""

# A toggle flip-flop: the feedback path q -> inverter -> d is cut only
# by the register, so the combinational part must levelize acyclically.
_TOGGLE = """
entity @cell_inv_i1 (i1$ %a0) -> (i1$ %y) {
  %0 = prb i1$ %a0
  %t = const time 0s
  %n = not i1 %0
  drv i1$ %y, %n after %t
}

entity @cell_dff_i1 (i1$ %d0, i1$ %t0) -> (i1$ %q) {
  %0 = prb i1$ %d0
  %1 = prb i1$ %t0
  %t = const time 0s
  reg i1$ %q, %0 rise %1 after %t
}

proc @clkgen () -> (i1$ %clk) {
b0:
  %half = const time 1ns
  %t0 = const time 0s
  %one = const i1 1
  %zero = const i1 0
  drv i1$ %clk, %one after %t0
  wait %b1 for %half
b1:
  drv i1$ %clk, %zero after %t0
  wait %b2 for %half
b2:
  br %b0
}

entity @top () -> () {
  %z1 = const i1 0
  %clk = sig i1 %z1
  %q = sig i1 %z1
  %d = sig i1 %z1
  inst @cell_inv_i1 (i1$ %q) -> (i1$ %d)
  inst @cell_dff_i1 (i1$ %d, i1$ %clk) -> (i1$ %q)
  inst @clkgen () -> (i1$ %clk)
}
"""

# Two independent clock domains (1ns and 1.5ns half-periods), each a
# toggle flip-flop — the plan builds one specialized settle function
# per clock net.
_TWO_CLOCKS = """
entity @cell_inv_i1 (i1$ %a0) -> (i1$ %y) {
  %0 = prb i1$ %a0
  %t = const time 0s
  %n = not i1 %0
  drv i1$ %y, %n after %t
}

entity @cell_dff_i1 (i1$ %d0, i1$ %t0) -> (i1$ %q) {
  %0 = prb i1$ %d0
  %1 = prb i1$ %t0
  %t = const time 0s
  reg i1$ %q, %0 rise %1 after %t
}

proc @clkgen_a () -> (i1$ %clk) {
b0:
  %half = const time 1ns
  %t0 = const time 0s
  %one = const i1 1
  %zero = const i1 0
  drv i1$ %clk, %one after %t0
  wait %b1 for %half
b1:
  drv i1$ %clk, %zero after %t0
  wait %b2 for %half
b2:
  br %b0
}

proc @clkgen_b () -> (i1$ %clk) {
b0:
  %half = const time 1500ps
  %t0 = const time 0s
  %one = const i1 1
  %zero = const i1 0
  drv i1$ %clk, %one after %t0
  wait %b1 for %half
b1:
  drv i1$ %clk, %zero after %t0
  wait %b2 for %half
b2:
  br %b0
}

entity @top () -> () {
  %z1 = const i1 0
  %clka = sig i1 %z1
  %clkb = sig i1 %z1
  %qa = sig i1 %z1
  %qb = sig i1 %z1
  %da = sig i1 %z1
  %db = sig i1 %z1
  inst @cell_inv_i1 (i1$ %qa) -> (i1$ %da)
  inst @cell_dff_i1 (i1$ %da, i1$ %clka) -> (i1$ %qa)
  inst @cell_inv_i1 (i1$ %qb) -> (i1$ %db)
  inst @cell_dff_i1 (i1$ %db, i1$ %clkb) -> (i1$ %qb)
  inst @clkgen_a () -> (i1$ %clka)
  inst @clkgen_b () -> (i1$ %clkb)
}
"""

# A cross-coupled NOR pair (SR latch built from gates): the two gates
# form a zero-delay cycle that cannot levelize — the cone must diagnose
# it and still settle the stable stimulus by fixpoint iteration.
_SR_LATCH = """
entity @cell_nor_i1 (i1$ %a0, i1$ %a1) -> (i1$ %y) {
  %0 = prb i1$ %a0
  %1 = prb i1$ %a1
  %t = const time 0s
  %o = or i1 %0, %1
  %n = not i1 %o
  drv i1$ %y, %n after %t
}

proc @stim () -> (i1$ %s, i1$ %r) {
b0:
  %t = const time 1ns
  %t0 = const time 0s
  %one = const i1 1
  %zero = const i1 0
  drv i1$ %s, %one after %t0
  wait %b1 for %t
b1:
  drv i1$ %s, %zero after %t0
  wait %b2 for %t
b2:
  drv i1$ %r, %one after %t0
  wait %b3 for %t
b3:
  halt
}

entity @top () -> () {
  %z1 = const i1 0
  %s = sig i1 %z1
  %r = sig i1 %z1
  %q = sig i1 %z1
  %qn = sig i1 %z1
  inst @cell_nor_i1 (i1$ %r, i1$ %qn) -> (i1$ %q)
  inst @cell_nor_i1 (i1$ %s, i1$ %q) -> (i1$ %qn)
  inst @stim () -> (i1$ %s, i1$ %r)
}
"""

# A "cell" with a non-zero gate delay: recognized as combinational but
# not absorbable (the cone is zero-delay), so it must fall back to the
# event-driven machinery — and the hybrid still traces identically.
_SLOW_CELL = """
entity @cell_slow_inv (i1$ %a0) -> (i1$ %y) {
  %0 = prb i1$ %a0
  %t = const time 1ns
  %n = not i1 %0
  drv i1$ %y, %n after %t
}

proc @stim () -> (i1$ %a) {
b0:
  %t = const time 2ns
  %t0 = const time 0s
  %one = const i1 1
  drv i1$ %a, %one after %t0
  wait %b1 for %t
b1:
  halt
}

entity @top () -> () {
  %z1 = const i1 0
  %a = sig i1 %z1
  %y = sig i1 %z1
  inst @cell_slow_inv (i1$ %a) -> (i1$ %y)
  inst @stim () -> (i1$ %a)
}
"""

# Two combinational cells driving the same net: not a levelizable
# netlist, and the diagnosis must name the net.
_MULTI_DRIVER = """
entity @cell_inv_i1 (i1$ %a0) -> (i1$ %y) {
  %0 = prb i1$ %a0
  %t = const time 0s
  %n = not i1 %0
  drv i1$ %y, %n after %t
}

entity @top () -> () {
  %z1 = const i1 0
  %a = sig i1 %z1
  %b = sig i1 %z1
  %y = sig i1 %z1
  inst @cell_inv_i1 (i1$ %a) -> (i1$ %y)
  inst @cell_inv_i1 (i1$ %b) -> (i1$ %y)
}
"""


def _run_both(source, top="top", until_fs=None, cache_dir=None):
    """Simulate under interp and levelized; assert identical traces."""
    ref = simulate(parse_module(source), top, until_fs=until_fs)
    res = simulate(parse_module(source), top, until_fs=until_fs,
                   backend="levelized", cache_dir=cache_dir)
    assert ref.trace.differences(res.trace) == []
    assert res.assertion_failures == ref.assertion_failures
    return res


def test_latch_cell_absorbed(tmp_path):
    res = _run_both(_LATCH, cache_dir=str(tmp_path))
    report = res.design.report
    assert report["seqs"] == 1
    assert report["fallbacks"] == []
    # The latch tracked the data while transparent and held it after.
    history = dict(res.trace.finalize().changes)["top.q"]
    assert history[-1][1] == 42


def test_register_cut_feedback_levelizes(tmp_path):
    res = _run_both(_TOGGLE, until_fs=20_000_000, cache_dir=str(tmp_path))
    report = res.design.report
    assert report["gates"] == 1 and report["seqs"] == 1
    assert report["cycles"] == []
    # The register actually toggled.
    history = dict(res.trace.finalize().changes)["top.q"]
    assert len(history) > 4


def test_multi_clock_domains(tmp_path):
    res = _run_both(_TWO_CLOCKS, until_fs=30_000_000,
                    cache_dir=str(tmp_path))
    cone = res.design.cone
    assert len(cone.domains) == 2
    # Each domain's specialized function covers strictly fewer gates
    # than the full cone.
    for _slot, covered, _fn in cone.domains:
        assert len(covered) < len(cone.slot_sigs)


def test_combinational_cycle_diagnosed_and_settled(tmp_path):
    res = _run_both(_SR_LATCH, cache_dir=str(tmp_path))
    report = res.design.report
    assert report["cycles"], "cross-coupled NORs must be diagnosed"
    assert any("top.q" in members for members in report["cycles"])
    history = dict(res.trace.finalize().changes)["top.q"]
    assert history[-1][1] == 0  # reset won


def test_nonzero_delay_cell_falls_back(tmp_path):
    res = _run_both(_SLOW_CELL, cache_dir=str(tmp_path))
    fallbacks = res.design.fallback_cells
    assert len(fallbacks) == 1
    path, reason = fallbacks[0]
    assert "cell_slow_inv" in path
    assert "delay" in reason


def test_multi_driven_net_raises():
    with pytest.raises(SimulationError, match="more than one"):
        simulate(parse_module(_MULTI_DRIVER), "top", backend="levelized",
                 cache_dir=None)


def test_sanitize_rejected():
    with pytest.raises(SimulationError, match="sanitizer"):
        simulate(parse_module(_TOGGLE), "top", until_fs=4_000_000,
                 backend="levelized", sanitize=True)


# -- the compile cache ---------------------------------------------------------


def _cache_file(source, tmp_path):
    module = parse_module(source)
    return tmp_path / f"{cone_cache_key(module, 'top')}.py"


def test_cache_cold_then_warm(tmp_path):
    cold = _run_both(_TOGGLE, until_fs=8_000_000, cache_dir=str(tmp_path))
    assert cold.stats["cache_misses"] == 1
    assert cold.stats["cache_hits"] == 0
    entry = _cache_file(_TOGGLE, tmp_path)
    assert entry.exists()
    warm = _run_both(_TOGGLE, until_fs=8_000_000, cache_dir=str(tmp_path))
    assert warm.stats["cache_hits"] == 1
    assert warm.stats["cache_misses"] == 0
    assert warm.stats["cache_errors"] == 0


def test_corrupted_cache_entry_recompiles(tmp_path):
    _run_both(_TOGGLE, until_fs=8_000_000, cache_dir=str(tmp_path))
    entry = _cache_file(_TOGGLE, tmp_path)
    entry.write_text("this is not (((valid python")
    res = _run_both(_TOGGLE, until_fs=8_000_000, cache_dir=str(tmp_path))
    assert res.stats["cache_errors"] == 1
    assert res.stats["cache_misses"] == 1
    # The fresh compile overwrote the corrupted entry.
    assert "not (((valid" not in entry.read_text()


def test_stale_engine_version_recompiles(tmp_path):
    _run_both(_TOGGLE, until_fs=8_000_000, cache_dir=str(tmp_path))
    entry = _cache_file(_TOGGLE, tmp_path)
    stale = entry.read_text().replace(
        f"ENGINE_VERSION = {ENGINE_VERSION}", "ENGINE_VERSION = 0")
    entry.write_text(stale)
    res = _run_both(_TOGGLE, until_fs=8_000_000, cache_dir=str(tmp_path))
    assert res.stats["cache_errors"] == 1
    assert res.stats["cache_misses"] == 1


def test_analysis_mode_skips_codegen(tmp_path):
    design = elaborate_levelized(parse_module(_TOGGLE), "top",
                                 cache_dir=str(tmp_path), analysis=True)
    assert design.cone is None
    assert design.report["gates"] == 1
    assert not list(tmp_path.iterdir())  # nothing written


# -- reach accounting and CLI --------------------------------------------------


def test_netlist_engine_report_lists_levelized():
    from repro.designs import netlist_engine_report

    engines, notes = netlist_engine_report("gray", cycles=4)
    assert engines == ["interp", "blaze", "cycle", "levelized"]
    assert notes == []


def test_cli_levelized_stats_and_cache(tmp_path, capsys):
    from repro.sim.__main__ import main

    argv = ["--design", "lfsr", "--cycles", "4", "--engine", "levelized",
            "--stats", "--cache-dir", str(tmp_path)]
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "levelized cache: 0 hits, 1 misses" in err
    assert main(argv) == 0
    err = capsys.readouterr().err
    assert "levelized cache: 1 hits, 0 misses" in err


def test_cli_netlist_cross_check_includes_levelized(tmp_path, capsys):
    from repro.sim.__main__ import main

    rc = main(["--design", "gray", "--cycles", "4", "--netlist",
               "--cross-check", "--cache-dir", str(tmp_path)])
    assert rc == 0
    err = capsys.readouterr().err
    assert "identical across interp, blaze, levelized" in err


def test_cli_rejects_levelized_batch_and_sanitize(tmp_path):
    from repro.sim.__main__ import main

    with pytest.raises(SystemExit):
        main(["--design", "gray", "--engine", "levelized", "--batch", "2"])
    with pytest.raises(SystemExit):
        main(["--design", "gray", "--engine", "levelized", "--sanitize"])
