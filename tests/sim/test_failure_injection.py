"""Simulator failure modes: combinational loops, bad designs, limits."""

import pytest

from repro.ir import parse_module
from repro.sim import SimulationError, simulate


def test_zero_delay_feedback_loop_hits_delta_limit():
    """An inverter driving itself with zero delay oscillates across
    deltas; the kernel must detect it instead of hanging."""
    module = parse_module("""
    entity @osc () -> () {
      %z = const i1 0
      %s = sig i1 %z
      %sp = prb i1$ %s
      %n = not i1 %sp
      %t = const time 0s
      drv i1$ %s, %n after %t
    }
    """)
    with pytest.raises(SimulationError, match="delta cycle limit"):
        simulate(module, "osc")


def test_delta_loop_detected_on_all_backends():
    text = """
    entity @osc () -> () {
      %z = const i1 0
      %s = sig i1 %z
      %sp = prb i1$ %s
      %n = not i1 %sp
      %t = const time 0s
      drv i1$ %s, %n after %t
    }
    """
    for backend in ("interp", "blaze", "cycle"):
        with pytest.raises(SimulationError, match="delta cycle limit"):
            simulate(parse_module(text), "osc", backend=backend)


def test_top_must_be_entity():
    module = parse_module("""
    proc @p () -> () {
    entry:
      halt
    }
    """)
    with pytest.raises(SimulationError, match="must be an entity"):
        simulate(module, "p")


def test_undefined_top():
    module = parse_module("entity @e () -> () {\n}")
    with pytest.raises(SimulationError, match="not defined"):
        simulate(module, "ghost")


def test_until_fs_stops_simulation():
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %s = sig i8 %z
      inst @ticker () -> (i8$ %s)
    }
    proc @ticker () -> (i8$ %s) {
    entry:
      br %loop
    loop:
      %sp = prb i8$ %s
      %one = const i8 1
      %next = add i8 %sp, %one
      %t = const time 10ns
      drv i8$ %s, %next after %t
      wait %loop for %t
    }
    """)
    result = simulate(module, "top", until_fs=95_000_000)
    assert result.final_time_fs <= 95_000_000
    # ~9 increments in 95ns at 10ns period.
    assert result.trace.history("top.s")[-1][1] in (9, 10)


def test_llhd_finish_stops_simulation():
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %s = sig i8 %z
      inst @ticker () -> (i8$ %s)
      inst @stopper () -> ()
    }
    proc @ticker () -> (i8$ %s) {
    entry:
      br %loop
    loop:
      %sp = prb i8$ %s
      %one = const i8 1
      %next = add i8 %sp, %one
      %t = const time 1ns
      drv i8$ %s, %next after %t
      wait %loop for %t
    }
    proc @stopper () -> () {
    entry:
      %t = const time 5ns
      wait %stop for %t
    stop:
      call void @llhd.finish ()
      halt
    }
    """)
    result = simulate(module, "top")
    assert result.kernel.finished
    assert result.final_time_fs <= 6_000_000


def test_extf_out_of_range_raises():
    module = parse_module("""
    entity @top () -> () {
      inst @bad () -> ()
    }
    proc @bad () -> () {
    entry:
      %z = const i8 0
      %arr = [4 x i8 %z]
      %idx = const i8 9
      %v = extf i8, [4 x i8] %arr, %idx
      halt
    }
    """)
    with pytest.raises(SimulationError, match="out of range"):
        simulate(module, "top")


def test_max_function_steps_guard():
    module = parse_module("""
    func @forever () void {
    entry:
      br %loop
    loop:
      br %loop
    }
    entity @top () -> () {
      inst @caller () -> ()
    }
    proc @caller () -> () {
    entry:
      call void @forever ()
      halt
    }
    """)
    with pytest.raises(SimulationError, match="exceeded"):
        simulate(module, "top")
