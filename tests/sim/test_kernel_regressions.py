"""Regression tests for kernel correctness bugs fixed in PR 2.

Covers:

* ``con`` merging of nets that already hold pending transactions from
  the *same* driver (the old code clobbered one timeline);
* diagnosis of conflicting two-valued initial values on ``con``;
* shift evaluation on nine-valued operands (X/Z propagate instead of
  raising) — in both engines;
* transport-delay cancellation semantics of the sorted
  :class:`~repro.sim.engine.DriverTimeline` (the bisect rewrite must be
  behaviour-identical to the list-rebuild original);
* multi-trigger ``reg`` edge tracking agreeing between engines.
"""

import pytest

from repro.ir import LogicVec, parse_module
from repro.ir.values import TimeValue
from repro.sim import SimulationError, simulate
from repro.sim.engine import DriverTimeline, Kernel


NS = 1_000_000


def test_connect_merges_pending_timelines_per_driver():
    # One entity (one driver key) drives two nets, then connects them:
    # both transactions must survive onto the merged net.
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %v1 = const i8 11
      %v2 = const i8 22
      %t1 = const time 1ns
      %t2 = const time 2ns
      %a = sig i8 %z
      %b = sig i8 %z
      drv i8$ %a, %v1 after %t1
      drv i8$ %b, %v2 after %t2
      con i8$ %a, %b
    }
    """)
    result = simulate(module, "top")
    assert result.trace.history("top.a") == [
        (0, 0), (1 * NS, 11), (2 * NS, 22)]


def test_connect_merges_same_driver_same_time_deterministically():
    # Same driver, same maturity time on both nets: exactly one value
    # wins, the simulation does not lose the instant entirely.
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %v1 = const i8 11
      %v2 = const i8 22
      %t1 = const time 1ns
      %a = sig i8 %z
      %b = sig i8 %z
      drv i8$ %a, %v1 after %t1
      drv i8$ %b, %v2 after %t1
      con i8$ %a, %b
    }
    """)
    result = simulate(module, "top")
    history = result.trace.history("top.a")
    assert history[0] == (0, 0)
    assert history[1][0] == 1 * NS
    assert history[1][1] in (11, 22)


def test_connect_conflicting_initial_values_diagnosed():
    # iN has no resolution function: silently picking one initial value
    # was the old behaviour, now it is an error.
    module = parse_module("""
    entity @top () -> () {
      %one = const i8 1
      %two = const i8 2
      %a = sig i8 %one
      %b = sig i8 %two
      con i8$ %a, %b
    }
    """)
    with pytest.raises(SimulationError, match="conflicting initial"):
        simulate(module, "top")


def test_connect_logic_initial_values_resolve():
    # lN nets resolve via IEEE 1164 instead of erroring.
    module = parse_module("""
    entity @top () -> () {
      %u = const l4 "ZZ01"
      %v = const l4 "01ZZ"
      %a = sig l4 %u
      %b = sig l4 %v
      con l4$ %a, %b
    }
    """)
    result = simulate(module, "top")
    net = result.design.signal("top.a").find()
    assert net.value == LogicVec("0101")


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
def test_shift_of_unknown_vector_propagates_x(backend):
    module = parse_module("""
    entity @top () -> () {
      %init = const l8 "00000000"
      %s = sig l8 %init
      inst @driver () -> (l8$ %s)
    }
    proc @driver () -> (l8$ %s) {
    entry:
      %x = const l8 "0000X010"
      %one = const i8 1
      %r = shl l8 %x, %one
      %t = const time 1ns
      drv l8$ %s, %r after %t
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    assert result.trace.value_at("top.s", NS) == LogicVec("XXXXXXXX")


@pytest.mark.parametrize("backend", ["interp", "blaze", "cycle"])
@pytest.mark.parametrize("op", ["shl", "shr"])
def test_shift_by_unknown_amount_propagates_x(backend, op):
    module = parse_module("""
    entity @top () -> () {
      %init = const l8 "00000000"
      %s = sig l8 %init
      inst @driver () -> (l8$ %s)
    }
    proc @driver () -> (l8$ %s) {
    entry:
      %x = const l8 "00000110"
      %amt = const l8 "0000000X"
      %r = OP l8 %x, %amt
      %t = const time 1ns
      drv l8$ %s, %r after %t
      halt
    }
    """.replace("OP", op))
    result = simulate(module, "top", backend=backend)
    assert result.trace.value_at("top.s", NS) == LogicVec("XXXXXXXX")


@pytest.mark.parametrize("backend", ["interp", "blaze"])
def test_int_shift_by_unknown_amount_is_an_error(backend):
    # An iN result cannot encode "unknown"; this must raise, not wrap.
    module = parse_module("""
    entity @top () -> () {
      %z = const i8 0
      %s = sig i8 %z
      inst @driver () -> (i8$ %s)
    }
    proc @driver () -> (i8$ %s) {
    entry:
      %x = const i8 6
      %amt = const l8 "0000000X"
      %r = shl i8 %x, %amt
      %t = const time 1ns
      drv i8$ %s, %r after %t
      halt
    }
    """)
    with pytest.raises(SimulationError, match="unknown"):
        simulate(module, "top", backend=backend)


# -- transport-delay timeline semantics ---------------------------------------

def _times(timeline):
    return [t for t, _, _ in timeline]


def test_driver_timeline_cancels_at_or_after():
    tl = DriverTimeline()
    tl.schedule((5, 0, 0), (), 1)
    tl.schedule((7, 0, 0), (), 2)
    tl.schedule((9, 0, 0), (), 3)
    # Scheduling at t=7 cancels the pending t=7 and t=9 transactions.
    tl.schedule((7, 0, 0), (), 4)
    assert list(tl) == [((5, 0, 0), (), 1), ((7, 0, 0), (), 4)]
    # Scheduling before everything wipes the timeline.
    tl.schedule((1, 0, 0), (), 5)
    assert list(tl) == [((1, 0, 0), (), 5)]


def test_driver_timeline_mature_pops_prefix_returns_latest():
    tl = DriverTimeline()
    tl.schedule((2, 0, 0), (), "a")
    tl.schedule((3, 0, 0), (), "b")
    tl.schedule((9, 0, 0), (), "c")
    assert tl.mature((1, 0, 0)) is None
    assert tl.mature((3, 5, 0)) == ((), "b")
    assert _times(tl) == [(9, 0, 0)]
    assert tl.mature((9, 0, 0)) == ((), "c")
    assert len(tl) == 0


def test_kernel_transport_cancellation_unchanged():
    """Figure-2-style semantics through the public kernel interface."""
    kernel = Kernel()
    sig = kernel.create_signal("s", None, 0)
    # Drive 1 at 5ns, then (still at t=0) drive 2 at 3ns: the later
    # pending transaction is cancelled (transport-delay model).
    kernel.schedule_drive("drv", sig, 1, TimeValue(5 * NS))
    kernel.schedule_drive("drv", sig, 2, TimeValue(3 * NS))
    # A different driver's timeline is unaffected.
    kernel.schedule_drive("other", sig, 7, TimeValue(5 * NS))
    kernel.run()
    assert sig.value == 7
    assert not any(len(tl) for tl in sig.pending.values())


def test_two_future_edges_from_one_driver_both_apply():
    kernel = Kernel()
    sig = kernel.create_signal("clk", None, 0)
    kernel.schedule_drive("drv", sig, 1, TimeValue(1 * NS))
    kernel.schedule_drive("drv", sig, 0, TimeValue(2 * NS))
    kernel.run(until_fs=int(1.5 * NS))
    assert sig.value == 1
    kernel.run()
    assert sig.value == 0


@pytest.mark.parametrize("backend", ["interp", "blaze"])
def test_multi_trigger_reg_tracks_all_edges(backend):
    # A reg with rise(a) and fall(b) triggers: when the first trigger
    # fires, the second trigger's previous value must still be updated,
    # or a later activation sees a stale edge.  Engines must agree.
    module = parse_module("""
    entity @top () -> () {
      %z1 = const i1 0
      %z8 = const i8 0
      %a = sig i1 %z1
      %b = sig i1 %z1
      %q = sig i8 %z8
      inst @cell (i1$ %a, i1$ %b) -> (i8$ %q)
      inst @stim () -> (i1$ %a, i1$ %b)
    }
    entity @cell (i1$ %a, i1$ %b) -> (i8$ %q) {
      %ap = prb i1$ %a
      %bp = prb i1$ %b
      %v1 = const i8 1
      %v2 = const i8 2
      reg i8$ %q, %v1 rise %ap, %v2 fall %bp
    }
    proc @stim () -> (i1$ %a, i1$ %b) {
    entry:
      %b0 = const i1 0
      %b1 = const i1 1
      %t1 = const time 1ns
      drv i1$ %a, %b1 after %t1
      drv i1$ %b, %b1 after %t1
      wait %step2 for %t1
    step2:
      %t2 = const time 2ns
      drv i1$ %b, %b0 after %t2
      halt
    }
    """)
    result = simulate(module, "top", backend=backend)
    reference = simulate(module, "top", backend="interp")
    assert result.trace.finalize().changes == \
        reference.trace.finalize().changes
    # rise(a) at 1ns stores 1; fall(b) at 3ns stores 2 — the fall edge
    # is only detected if b's previous value was tracked through the
    # 1ns activation where the rise trigger already fired.
    assert result.trace.value_at("top.q", 2 * NS) == 1
    assert result.trace.value_at("top.q", 4 * NS) == 2
