"""Lane semantics of the batch-parallel simulation engine.

The batch engine's contract is *per-lane scalar equivalence*: lane k of
a K-lane run — trace, print output, assertion failures, finish time —
must be byte-identical to the scalar simulation of lane k's stimulus.
This file pins that contract in both execution modes:

* *vectorized* (uniform stimulus): every design in the suite, K lanes
  demuxed against the unmodified scalar run;
* *replicated* (divergent stimulus): a hand-written clocked design
  whose per-lane reset/enable phases and finish times all differ, so
  lanes wake, sleep, and die on different schedules — including the
  single-live-lane tail (every other lane finished) and the all-dead
  endgame.

Plus the degenerate cases (K=1 is the scalar pipeline, bit for bit)
and the uniformity guards that police the vectorized fast path.
"""

import pytest

from repro.designs import ALL_DESIGNS, DESIGNS, compile_design
from repro.ir import parse_module
from repro.sim import BatchStimulus, simulate, simulate_batch
from repro.sim.lanes import LaneDivergence, u1, uindex

from ..designs import SUITE_TEST_CYCLES as CYCLES

ENGINES = ("interp", "blaze")


def _assert_lane_matches(ref, lane, what):
    assert ref.trace.differences(lane.trace) == [], \
        f"{what}: {ref.trace.differences(lane.trace)[:4]}"
    assert ref.output == lane.output, what
    assert ref.assertion_failures == lane.assertion_failures, what
    assert ref.final_time_fs == lane.final_time_fs, what


# -- vectorized: uniform stimulus across the whole suite ----------------------


@pytest.mark.parametrize("backend", ENGINES)
@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_uniform_lanes_demux_to_the_scalar_run(name, backend):
    """K identical lanes == K copies of the scalar run, on every design."""
    lanes = 4
    batch = simulate_batch(compile_design(name, cycles=CYCLES[name]),
                           DESIGNS[name].top, lanes, backend=backend)
    assert batch.mode == "vectorized"
    ref = simulate(compile_design(name, cycles=CYCLES[name]),
                   DESIGNS[name].top, backend=backend)
    for k in range(lanes):
        _assert_lane_matches(ref, batch.lane(k), f"{name} lane {k}")


# -- replicated: hand-written lane-divergent design ---------------------------

#: Free-running clock (10ns period), a process register with async-ish
#: reset and enable, and a derived net computed by the top entity's own
#: dataflow (kept vectorized even in replicated mode).  The stimulus
#: process is generated per lane with shifted phases.
_DIVERGENT_DESIGN = """
entity @bt_top () -> () {{
  %z1 = const i1 0
  %z8 = const i8 0
  %clk = sig i1 %z1
  %rst = sig i1 %z1
  %en = sig i1 %z1
  %cnt = sig i8 %z8
  %cv = prb i8$ %cnt
  %lim = const i8 3
  %hot = uge i8 %cv, %lim
  %busy = sig i1 %z1
  %dt = const time 1ns
  drv i1$ %busy, %hot after %dt
  inst @bt_clock () -> (i1$ %clk)
  inst @bt_count (i1$ %clk, i1$ %rst, i1$ %en) -> (i8$ %cnt)
  inst @bt_stim0 () -> (i1$ %rst, i1$ %en)
}}
proc @bt_clock () -> (i1$ %clk) {{
entry:
  %one = const i1 1
  %zero = const i1 0
  %half = const time 5ns
  br %hi
hi:
  drv i1$ %clk, %one after %half
  wait %lo for %half
lo:
  drv i1$ %clk, %zero after %half
  wait %hi for %half
}}
proc @bt_count (i1$ %clk, i1$ %rst, i1$ %en) -> (i8$ %cnt) {{
entry:
  %one = const i8 1
  %z8 = const i8 0
  %eps = const time 0s 1d
  br %loop
loop:
  wait %check for %clk
check:
  %c = prb i1$ %clk
  br %c, %loop, %rising
rising:
  %r = prb i1$ %rst
  br %r, %counting, %clearing
clearing:
  drv i8$ %cnt, %z8 after %eps
  br %loop
counting:
  %e = prb i1$ %en
  br %e, %loop, %bump
bump:
  %v = prb i8$ %cnt
  %nv = add i8 %v, %one
  drv i8$ %cnt, %nv after %eps
  br %loop
}}
{stims}
"""

_STIM_TEMPLATE = """
proc @bt_stim{k} () -> (i1$ %rst, i1$ %en) {{
entry:
  %on = const i1 1
  %off = const i1 0
  %now = const time 0s 1d
  %t_rst = const time {rst}ns
  %t_en_off = const time {en_off}ns
  %t_en_on = const time {en_on}ns
  %t_stop = const time {stop}ns
  drv i1$ %rst, %on after %now
  wait %release for %t_rst
release:
  drv i1$ %rst, %off after %now
  drv i1$ %en, %on after %now
  wait %pause for %t_en_off
pause:
  drv i1$ %en, %off after %now
  wait %resume for %t_en_on
resume:
  drv i1$ %en, %on after %now
  wait %stop for %t_stop
stop:
  call void @llhd.finish ()
  halt
}}
"""


def _lane_phases(k):
    """Shifted reset release / enable toggles / finish, all lane-unique."""
    return dict(k=k, rst=3 + 2 * k, en_off=7 + 3 * k, en_on=6 + 2 * k,
                stop=24 + 7 * k)


def _divergent_module(lane_count, instantiate=0):
    """The clocked design plus ``lane_count`` phase-shifted stimulus
    processes; the top instantiates the one for lane ``instantiate``."""
    stims = "".join(_STIM_TEMPLATE.format(**_lane_phases(k))
                    for k in range(lane_count))
    text = _DIVERGENT_DESIGN.format(stims=stims)
    if instantiate != 0:
        text = text.replace("inst @bt_stim0 ", f"inst @bt_stim{instantiate} ")
    return parse_module(text)


@pytest.mark.parametrize("backend", ENGINES)
def test_divergent_phases_match_per_lane_scalar_runs(backend):
    """Per-lane reset/enable phase shifts and staggered finishes."""
    lanes = 4
    module = _divergent_module(lanes)
    stimulus = BatchStimulus({
        "bt_stim0": [module.get(f"bt_stim{k}") for k in range(lanes)]})
    batch = simulate_batch(module, "bt_top", lanes, backend=backend,
                           stimulus=stimulus)
    assert batch.mode == "replicated"
    finishes = set()
    for k in range(lanes):
        ref = simulate(_divergent_module(lanes, instantiate=k), "bt_top",
                       backend=backend)
        _assert_lane_matches(ref, batch.lane(k), f"lane {k}")
        finishes.add(batch.lane(k).final_time_fs)
    # The point of the design: every lane dies at its own instant.
    assert len(finishes) == lanes


@pytest.mark.parametrize("backend", ENGINES)
def test_single_live_lane_runs_to_its_own_finish(backend):
    """Lane 0 finishes almost immediately; lane 1 must keep running —
    alone — through many more clock cycles, and the dead lane's view
    must stay truncated at its own finish instant."""
    lanes = 2
    module = _divergent_module(lanes)
    stim1 = module.get("bt_stim1")
    # Rebuild lane 0 with an immediate stop: finish on the first wait.
    early = parse_module(_STIM_TEMPLATE.format(
        k=0, rst=1, en_off=2, en_on=2, stop=1)).get("bt_stim0")
    stimulus = BatchStimulus({"bt_stim0": [early, stim1]})
    batch = simulate_batch(module, "bt_top", lanes, backend=backend,
                           stimulus=stimulus)
    assert batch.mode == "replicated"
    lane0, lane1 = batch.lane(0), batch.lane(1)
    assert lane0.final_time_fs < lane1.final_time_fs
    for _, history in lane0.trace.finalize().changes.items():
        assert all(fs <= lane0.final_time_fs for fs, _ in history)
    # Lane 1 is bit-for-bit the scalar run despite its dead neighbour.
    scalar_mod = _divergent_module(lanes, instantiate=1)
    ref = simulate(scalar_mod, "bt_top", backend=backend)
    _assert_lane_matches(ref, lane1, "surviving lane")


# -- degenerate batches -------------------------------------------------------


@pytest.mark.parametrize("backend", ENGINES)
def test_single_lane_batch_is_the_scalar_pipeline(backend):
    """K=1 without stimulus takes the unmodified scalar path."""
    name = "fifo"
    batch = simulate_batch(compile_design(name, cycles=CYCLES[name]),
                           DESIGNS[name].top, 1, backend=backend)
    assert batch.mode == "scalar"
    ref = simulate(compile_design(name, cycles=CYCLES[name]),
                   DESIGNS[name].top, backend=backend)
    assert ref.trace.differences(batch.lane(0).trace) == []
    assert ref.stats == batch.stats


@pytest.mark.parametrize("backend", ENGINES)
def test_single_lane_stimulus_batch_matches_scalar(backend):
    """K=1 *with* stimulus runs replicated over empty lane paths and
    must still be bit-for-bit the scalar run of that stimulus."""
    module = _divergent_module(1)
    stimulus = BatchStimulus({"bt_stim0": [module.get("bt_stim0")]})
    batch = simulate_batch(module, "bt_top", 1, backend=backend,
                           stimulus=stimulus)
    assert batch.mode == "replicated"
    ref = simulate(_divergent_module(1), "bt_top", backend=backend)
    _assert_lane_matches(ref, batch.lane(0), "single lane")


# -- uniformity guards --------------------------------------------------------


def test_u1_accepts_uniform_and_rejects_divergent_masks():
    assert u1(0b1111, 4) == 1
    assert u1(0b0000, 4) == 0
    assert u1(1, 1) == 1
    with pytest.raises(LaneDivergence):
        u1(0b0101, 4)


def test_uindex_requires_lane_uniform_indices():
    from repro.ir.ninevalued import LogicVec

    idx = LogicVec("10" * 4)  # value 2 in every lane (K=4, w=2)
    assert uindex(idx, 4) == 2
    mixed = LogicVec("10" * 3 + "01")
    with pytest.raises(LaneDivergence):
        uindex(mixed, 4)
