"""The independent cycle simulator must agree with interpreter and Blaze."""

import pytest

from repro.ir import parse_module
from repro.sim import simulate

from .test_blaze_equivalence import (
    ENTITY_DESIGN, PHI_AND_FUNCTION, TESTBENCH_WITH_LOOP,
)


@pytest.mark.parametrize("text,top", [
    (TESTBENCH_WITH_LOOP, "top"),
    (ENTITY_DESIGN, "top"),
    (PHI_AND_FUNCTION, "top"),
], ids=["loop-testbench", "reg-mux-entities", "phi-function"])
def test_cycle_matches_interp(text, top):
    module = parse_module(text)
    interp = simulate(module, top, backend="interp")
    cycle = simulate(module, top, backend="cycle")
    assert interp.trace.differences(cycle.trace) == []


def test_three_way_agreement():
    module = parse_module(ENTITY_DESIGN)
    traces = [simulate(module, "top", backend=b).trace
              for b in ("interp", "blaze", "cycle")]
    assert traces[0].differences(traces[1]) == []
    assert traces[1].differences(traces[2]) == []
