"""Property tests: packed wide vectors vs the bitwise-zipped oracle.

Random widths 1–256 and random nine-valued contents; the packed whole-
vector operations must agree with applying the IEEE 1164 oracle tables
bit by bit, and every integer/string round-trip and slicing path must be
indistinguishable from the seed's per-character implementation.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir.ninevalued import LogicVec, TO_X01, VALUES, resolve_many
from repro.sim.values import extract_path, insert_path

from .oracle1164 import (
    oracle_and, oracle_not, oracle_or, oracle_resolve, oracle_xor,
    zip_oracle,
)

bit = st.sampled_from(VALUES)
wide_text = st.text(alphabet=VALUES, min_size=1, max_size=256)


@st.composite
def same_width_pair(draw):
    a = draw(wide_text)
    b = draw(st.text(alphabet=VALUES, min_size=len(a), max_size=len(a)))
    return a, b


@given(same_width_pair())
@settings(max_examples=200, deadline=None)
def test_binary_ops_match_zipped_oracle(pair):
    a, b = pair
    va, vb = LogicVec(a), LogicVec(b)
    assert va.and_(vb).bits == zip_oracle(oracle_and, a, b)
    assert va.or_(vb).bits == zip_oracle(oracle_or, a, b)
    assert va.xor(vb).bits == zip_oracle(oracle_xor, a, b)
    assert va.resolve(vb).bits == zip_oracle(oracle_resolve, a, b)


@given(wide_text)
@settings(max_examples=200, deadline=None)
def test_unary_ops_match_oracle(text):
    v = LogicVec(text)
    assert v.not_().bits == "".join(oracle_not(c) for c in text)
    assert v.to_x01().bits == "".join(TO_X01[c] for c in text)
    assert str(v) == text and v.width == len(text)


@given(wide_text)
@settings(max_examples=200, deadline=None)
def test_two_valued_and_int_roundtrip(text):
    v = LogicVec(text)
    two_valued = all(TO_X01[c] in "01" for c in text)
    assert v.is_two_valued == two_valued
    if two_valued:
        value = int("".join(TO_X01[c] for c in text), 2)
        assert v.to_int() == value
        assert LogicVec.from_int(value, v.width) == v.to_x01()
    else:
        with pytest.raises(ValueError):
            v.to_int()


@given(st.integers(0, 2**256 - 1), st.integers(1, 256))
@settings(max_examples=200, deadline=None)
def test_from_int_matches_binary_format(value, width):
    v = LogicVec.from_int(value, width)
    assert v.bits == format(value & ((1 << width) - 1), f"0{width}b")
    assert v.to_int() == value & ((1 << width) - 1)


@given(wide_text, st.data())
@settings(max_examples=200, deadline=None)
def test_width_changes_match_string_semantics(text, data):
    v = LogicVec(text)
    w = len(text)
    wider = data.draw(st.integers(w, w + 32))
    narrower = data.draw(st.integers(1, w))
    assert v.zext(wider).bits == "0" * (wider - w) + text
    assert v.sext(wider).bits == text[0] * (wider - w) + text
    assert v.trunc(narrower).bits == text[w - narrower:]


@given(wide_text, st.data())
@settings(max_examples=200, deadline=None)
def test_slice_and_splice_match_string_semantics(text, data):
    v = LogicVec(text)
    w = len(text)
    offset = data.draw(st.integers(0, w - 1))
    length = data.draw(st.integers(1, w - offset))
    # slice_ counts from the LSB, i.e. the end of the MSB-first string.
    assert v.slice_(offset, length).bits == text[w - offset - length:w - offset]
    repl = data.draw(st.text(alphabet=VALUES, min_size=length,
                             max_size=length))
    spliced = v.splice(offset, LogicVec(repl))
    assert spliced.bits == \
        text[:w - offset - length] + repl + text[w - offset:]
    assert LogicVec(text[:max(1, w // 2)]).concat(v).bits == \
        text[:max(1, w // 2)] + text


@given(wide_text, st.data())
@settings(max_examples=200, deadline=None)
def test_values_projection_paths_unchanged(text, data):
    """extract_path/insert_path over lN behave like string slicing."""
    v = LogicVec(text)
    w = len(text)
    offset = data.draw(st.integers(0, w - 1))
    length = data.draw(st.integers(1, w - offset))
    step = ("slice", offset, length, "logic")
    assert extract_path(v, (step,)).bits == \
        text[w - offset - length:w - offset]
    repl = data.draw(st.text(alphabet=VALUES, min_size=length,
                             max_size=length))
    written = insert_path(v, (step,), LogicVec(repl))
    assert written.bits == \
        text[:w - offset - length] + repl + text[w - offset:]
    # A nested aggregate path writes through unchanged around the vector.
    agg = (0, (v, 1))
    out = insert_path(agg, (("field", 1), ("field", 0), step),
                      LogicVec(repl))
    assert out[0] == 0 and out[1][1] == 1
    assert out[1][0].bits == written.bits


@given(st.lists(wide_text.filter(lambda t: len(t) <= 16), min_size=1,
                max_size=5))
@settings(max_examples=100, deadline=None)
def test_resolve_many_folds_pairwise(texts):
    width = len(texts[0])
    vecs = [LogicVec(t[:width].ljust(width, "Z")) for t in texts]
    expected = vecs[0].bits
    for v in vecs[1:]:
        expected = zip_oracle(oracle_resolve, expected, v.bits)
    assert resolve_many(vecs).bits == expected


@given(same_width_pair())
@settings(max_examples=100, deadline=None)
def test_equality_and_hash_follow_string_form(pair):
    a, b = pair
    va, vb = LogicVec(a), LogicVec(b)
    assert (va == vb) == (a == b)
    if a == b:
        assert hash(va) == hash(vb)


def test_splice_rejects_out_of_range_offsets():
    v = LogicVec("0000")
    with pytest.raises(ValueError):
        v.splice(3, LogicVec("11"))
    with pytest.raises(ValueError):
        v.splice(-1, LogicVec("1"))
    assert v.splice(2, LogicVec("11")).bits == "1100"


def test_zero_width_constructors_rejected():
    with pytest.raises(ValueError):
        LogicVec.from_int(0, 0)
    with pytest.raises(ValueError):
        LogicVec.filled("X", 0)
