"""Type system: interning, widths, textual syntax."""

import pytest
from hypothesis import given, strategies as st

from repro.ir import (
    array_type, bit_width, enum_type, int_type, logic_type, parse_type_text,
    pointer_type, signal_type, struct_type, time_type, void_type,
)


def test_interning_identity():
    assert int_type(32) is int_type(32)
    assert int_type(32) is not int_type(31)
    assert signal_type(int_type(8)) is signal_type(int_type(8))
    assert array_type(4, int_type(8)) is array_type(4, int_type(8))
    assert struct_type([int_type(1), time_type()]) is \
        struct_type([int_type(1), time_type()])


@given(st.integers(1, 1 << 16))
def test_int_width_roundtrip(width):
    ty = int_type(width)
    assert ty.width == width
    assert str(ty) == f"i{width}"
    assert parse_type_text(str(ty)) is ty


def test_invalid_widths_rejected():
    with pytest.raises(ValueError):
        int_type(0)
    with pytest.raises(ValueError):
        logic_type(0)
    with pytest.raises(ValueError):
        enum_type(0)


def test_signal_of_signal_rejected():
    with pytest.raises(ValueError):
        signal_type(signal_type(int_type(1)))
    with pytest.raises(ValueError):
        signal_type(pointer_type(int_type(1)))
    with pytest.raises(ValueError):
        signal_type(void_type())


@pytest.mark.parametrize("text,width", [
    ("i1", 1), ("i32", 32), ("l9", 9), ("n3", 2), ("time", 96),
    ("[4 x i8]", 32), ("{i8, i24}", 32), ("i16$", 16), ("i16*", 16),
    ("[2 x {i4, i4}]", 16),
])
def test_bit_width(text, width):
    assert bit_width(parse_type_text(text)) == width


@pytest.mark.parametrize("text", [
    "void", "time", "i7", "n12", "l4", "i32*", "i32$", "[3 x i5]",
    "{i1, i2, i3}", "[2 x [3 x i4]]", "{i8, {i4, i4}}*", "[4 x i1]$",
])
def test_syntax_roundtrip(text):
    ty = parse_type_text(text)
    assert str(ty) == text
    assert parse_type_text(str(ty)) is ty


def test_predicates():
    assert int_type(4).is_int
    assert signal_type(int_type(4)).is_signal
    assert not int_type(4).is_signal
    assert array_type(2, int_type(4)).is_aggregate
    assert struct_type([int_type(4)]).is_aggregate
    assert not int_type(4).is_aggregate
