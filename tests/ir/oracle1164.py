"""Test-only reference oracle: the verbatim IEEE 1164-1993 tables.

These tables were the original (pre-packing) implementation of
``repro.ir.ninevalued`` and are retained here, transcribed straight from
the standard, as the ground truth the packed bit-plane implementation is
checked against — exhaustively for every operand pair in
``test_packed_oracle.py`` and on random wide vectors in
``test_packed_property.py``.  Nothing in ``src/`` imports this module.
"""

VALUES = "UX01ZWLH-"
INDEX = {c: i for i, c in enumerate(VALUES)}

# Resolution table: the value observed on a wire driven by two sources.
# Rows/columns in the order of VALUES. IEEE 1164 std_logic resolution.
RESOLVE_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
    ["U", "X", "0", "X", "0", "0", "0", "0", "X"],  # 0
    ["U", "X", "X", "1", "1", "1", "1", "1", "X"],  # 1
    ["U", "X", "0", "1", "Z", "W", "L", "H", "X"],  # Z
    ["U", "X", "0", "1", "W", "W", "W", "W", "X"],  # W
    ["U", "X", "0", "1", "L", "W", "L", "W", "X"],  # L
    ["U", "X", "0", "1", "H", "W", "W", "H", "X"],  # H
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
]

# AND table (IEEE 1164 "and").
AND_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "0", "U", "U", "U", "0", "U", "U"],  # U
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # X
    ["0", "0", "0", "0", "0", "0", "0", "0", "0"],  # 0
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # 1
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # Z
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # W
    ["0", "0", "0", "0", "0", "0", "0", "0", "0"],  # L
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # H
    ["U", "X", "0", "X", "X", "X", "0", "X", "X"],  # -
]

# OR table (IEEE 1164 "or").
OR_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "1", "U", "U", "U", "1", "U"],  # U
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # X
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # 0
    ["1", "1", "1", "1", "1", "1", "1", "1", "1"],  # 1
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # Z
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # W
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # L
    ["1", "1", "1", "1", "1", "1", "1", "1", "1"],  # H
    ["U", "X", "X", "1", "X", "X", "X", "1", "X"],  # -
]

# XOR table (IEEE 1164 "xor").
XOR_TABLE = [
    # U    X    0    1    Z    W    L    H    -
    ["U", "U", "U", "U", "U", "U", "U", "U", "U"],  # U
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # X
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # 0
    ["U", "X", "1", "0", "X", "X", "1", "0", "X"],  # 1
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # Z
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # W
    ["U", "X", "0", "1", "X", "X", "0", "1", "X"],  # L
    ["U", "X", "1", "0", "X", "X", "1", "0", "X"],  # H
    ["U", "X", "X", "X", "X", "X", "X", "X", "X"],  # -
]

# NOT table.
NOT_TABLE = {
    "U": "U", "X": "X", "0": "1", "1": "0", "Z": "X",
    "W": "X", "L": "1", "H": "0", "-": "X",
}

# Conversion to the X01 subset.
TO_X01_TABLE = {
    "U": "X", "X": "X", "0": "0", "1": "1", "Z": "X",
    "W": "X", "L": "0", "H": "1", "-": "X",
}


def oracle_and(a, b):
    return AND_TABLE[INDEX[a]][INDEX[b]]


def oracle_or(a, b):
    return OR_TABLE[INDEX[a]][INDEX[b]]


def oracle_xor(a, b):
    return XOR_TABLE[INDEX[a]][INDEX[b]]


def oracle_resolve(a, b):
    return RESOLVE_TABLE[INDEX[a]][INDEX[b]]


def oracle_not(a):
    return NOT_TABLE[a]


def zip_oracle(fn, abits, bbits):
    """Bitwise application of a 1-bit oracle over two equal-width strings."""
    return "".join(fn(a, b) for a, b in zip(abits, bbits))
