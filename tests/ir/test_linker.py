"""Module linker: declaration resolution, duplicates, mismatches."""

import pytest

from repro.ir import link_modules, parse_module, print_module, verify_module
from repro.ir.linker import LinkError


def test_link_resolves_declaration():
    user = parse_module("""
    declare entity @adder (i8$, i8$) -> (i8$)
    entity @top () -> () {
      %z = const i8 0
      %a = sig i8 %z
      %b = sig i8 %z
      %y = sig i8 %z
      inst @adder (i8$ %a, i8$ %b) -> (i8$ %y)
    }
    """, name="user")
    impl = parse_module("""
    entity @adder (i8$ %a, i8$ %b) -> (i8$ %y) {
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %sum = add i8 %ap, %bp
      %t = const time 0s
      drv i8$ %y, %sum after %t
    }
    """, name="impl")
    linked = link_modules([user, impl])
    verify_module(linked)
    assert linked.get("adder").is_entity
    assert "adder" not in linked.declarations


def test_duplicate_definitions_rejected():
    a = parse_module("func @f () void {\nentry:\n  ret\n}")
    b = parse_module("func @f () void {\nentry:\n  ret\n}")
    with pytest.raises(LinkError, match="duplicate"):
        link_modules([a, b])


def test_signature_mismatch_rejected():
    user = parse_module("declare entity @x (i8$) -> ()")
    impl = parse_module("""
    entity @x (i16$ %a) -> () {
      %ap = prb i16$ %a
    }
    """)
    with pytest.raises(LinkError, match="input types"):
        link_modules([user, impl])


def test_unresolved_declaration_survives():
    user = parse_module("declare func @ext (i8) i8")
    linked = link_modules([user])
    assert "ext" in linked.declarations


def test_conflicting_declarations_rejected():
    a = parse_module("declare func @ext (i8) i8")
    b = parse_module("declare func @ext (i16) i8")
    with pytest.raises(LinkError, match="conflicting"):
        link_modules([a, b])


def test_linked_module_simulates():
    from repro.sim import simulate

    dut = parse_module("""
    entity @inverter (i1$ %a) -> (i1$ %y) {
      %ap = prb i1$ %a
      %n = not i1 %ap
      %t = const time 1ns
      drv i1$ %y, %n after %t
    }
    """)
    tb = parse_module("""
    declare entity @inverter (i1$) -> (i1$)
    entity @top () -> () {
      %z = const i1 0
      %a = sig i1 %z
      %y = sig i1 %z
      inst @inverter (i1$ %a) -> (i1$ %y)
      inst @stim () -> (i1$ %a)
    }
    proc @stim () -> (i1$ %a) {
    entry:
      %one = const i1 1
      %t = const time 5ns
      drv i1$ %a, %one after %t
      halt
    }
    """)
    linked = link_modules([tb, dut])
    result = simulate(linked, "top")
    assert result.trace.value_at("top.y", 2_000_000) == 1  # inverted 0
    assert result.trace.value_at("top.y", 7_000_000) == 0  # inverted 1
