"""Bitcode writer/reader round-trips and compactness checks."""

import pytest

from repro.ir import parse_module, print_module
from repro.ir.bitcode import (
    BitcodeError, read_module, read_varint, write_module, write_varint,
)

from .test_roundtrip_figures import (
    FIGURE2, FIGURE5_BEHAVIOURAL_FF, FIGURE5_STRUCTURAL,
)


def test_varint_roundtrip():
    import io

    for value in (0, 1, 127, 128, 300, 2**20, 2**40, 2**63):
        out = io.BytesIO()
        write_varint(out, value)
        assert read_varint(io.BytesIO(out.getvalue())) == value


def test_varint_compactness():
    import io

    out = io.BytesIO()
    write_varint(out, 127)
    assert len(out.getvalue()) == 1
    out = io.BytesIO()
    write_varint(out, 128)
    assert len(out.getvalue()) == 2


@pytest.mark.parametrize("text", [FIGURE2, FIGURE5_STRUCTURAL,
                                  FIGURE5_BEHAVIOURAL_FF],
                         ids=["figure2", "fig5-structural",
                              "fig5-behavioural"])
def test_module_roundtrip(text):
    module = parse_module(text)
    blob = write_module(module)
    restored = read_module(blob)
    assert print_module(restored) == print_module(module)


def test_bitcode_smaller_than_text():
    """The paper's Table 4 point: bitcode is several times smaller than
    the assembly text."""
    module = parse_module(FIGURE2)
    text_size = len(print_module(module).encode())
    bitcode_size = len(write_module(module))
    assert bitcode_size < text_size / 2


def test_bad_magic_rejected():
    with pytest.raises(BitcodeError, match="magic"):
        read_module(b"NOPE....")


def test_moore_output_roundtrips():
    from repro.designs import compile_design

    module = compile_design("gray", cycles=4)
    blob = write_module(module)
    restored = read_module(blob)
    assert print_module(restored) == print_module(module)


def test_roundtripped_module_simulates_identically():
    from repro.designs import DESIGNS, compile_design
    from repro.sim import simulate

    module = compile_design("lfsr", cycles=10)
    restored = read_module(write_module(module))
    a = simulate(module, DESIGNS["lfsr"].top)
    b = simulate(restored, DESIGNS["lfsr"].top)
    assert a.trace.differences(b.trace) == []
