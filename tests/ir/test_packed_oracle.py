"""Exhaustive 1-bit oracle tests for the packed nine-valued logic.

Every packed operation is compared against the verbatim IEEE 1164-1993
tables in ``oracle1164.py`` for **all 81 operand pairs** per binary table
and all 9 values for NOT / X01 normalization — no sampling, no shortcuts.
The resolution lattice laws (commutativity, associativity over all 729
triples, idempotence, U-dominance, Z-identity) are likewise checked
exhaustively, so the plane formulas cannot hide a single wrong entry.
"""

import itertools

import pytest

from repro.ir.ninevalued import (
    LogicVec, TO_X01, VALUES, and_bits, not_bit, or_bits, resolve_bits,
    xor_bits,
)

from .oracle1164 import (
    oracle_and, oracle_not, oracle_or, oracle_resolve, oracle_xor,
    TO_X01_TABLE,
)
from . import oracle1164

ALL_PAIRS = list(itertools.product(VALUES, repeat=2))

_BINARY_CASES = [
    ("and", LogicVec.and_, oracle_and),
    ("or", LogicVec.or_, oracle_or),
    ("xor", LogicVec.xor, oracle_xor),
    ("resolve", LogicVec.resolve, oracle_resolve),
]


def test_values_alphabet_matches_oracle():
    assert VALUES == oracle1164.VALUES


@pytest.mark.parametrize("name,packed,oracle", _BINARY_CASES,
                         ids=[c[0] for c in _BINARY_CASES])
def test_packed_binary_matches_table_for_all_81_pairs(name, packed, oracle):
    for a, b in ALL_PAIRS:
        got = packed(LogicVec(a), LogicVec(b)).bits
        assert got == oracle(a, b), \
            f"{name}({a}, {b}) = {got}, oracle says {oracle(a, b)}"


@pytest.mark.parametrize("name,packed,oracle", _BINARY_CASES,
                         ids=[c[0] for c in _BINARY_CASES])
def test_bit_helpers_match_table_for_all_81_pairs(name, packed, oracle):
    helper = {"and": and_bits, "or": or_bits, "xor": xor_bits,
              "resolve": resolve_bits}[name]
    for a, b in ALL_PAIRS:
        assert helper(a, b) == oracle(a, b)


def test_packed_not_matches_table_for_all_9_values():
    for a in VALUES:
        assert LogicVec(a).not_().bits == oracle_not(a)
        assert not_bit(a) == oracle_not(a)


def test_packed_to_x01_matches_table_for_all_9_values():
    for a in VALUES:
        assert LogicVec(a).to_x01().bits == TO_X01_TABLE[a]
    assert TO_X01 == TO_X01_TABLE


# -- resolution lattice laws (exhaustive) -------------------------------------

def test_resolution_commutative_all_pairs():
    for a, b in ALL_PAIRS:
        assert resolve_bits(a, b) == resolve_bits(b, a)


def test_resolution_associative_all_729_triples():
    for a, b, c in itertools.product(VALUES, repeat=3):
        assert resolve_bits(resolve_bits(a, b), c) == \
            resolve_bits(a, resolve_bits(b, c))


def test_resolution_idempotent_all_values():
    # Idempotent for all values except '-' (IEEE 1164: '-'∥'-' = X).
    for a in VALUES:
        expected = "X" if a == "-" else a
        assert resolve_bits(a, a) == expected


def test_u_dominates_resolution_all_values():
    for a in VALUES:
        assert resolve_bits(a, "U") == "U"
        assert resolve_bits("U", a) == "U"


def test_z_is_resolution_identity_except_dontcare():
    for a in VALUES:
        expected = "X" if a == "-" else a
        assert resolve_bits(a, "Z") == expected


def test_and_or_commutative_all_pairs():
    for a, b in ALL_PAIRS:
        assert and_bits(a, b) == and_bits(b, a)
        assert or_bits(a, b) == or_bits(b, a)
        assert xor_bits(a, b) == xor_bits(b, a)


def test_dominators_all_values():
    for a in VALUES:
        assert and_bits(a, "0") == "0"
        assert or_bits(a, "1") == "1"
