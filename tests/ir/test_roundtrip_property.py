"""Property: printer/parser round-trip on randomly generated functions."""

from hypothesis import given, settings, strategies as st

from repro.ir import (
    Builder, Function, Module, int_type, parse_module, print_module,
    verify_module,
)
from repro.ir.bitcode import read_module, write_module

_BINOPS = ["add", "sub", "mul", "and", "or", "xor"]
_CMPOPS = ["eq", "neq", "ult", "slt", "uge", "sge"]


@st.composite
def random_function(draw):
    """A random straight-line function over i16 values."""
    n_args = draw(st.integers(1, 4))
    module = Module()
    func = Function("f", [int_type(16)] * n_args,
                    [f"a{i}" for i in range(n_args)], int_type(16))
    module.add(func)
    block = func.create_block("entry")
    b = Builder.at_end(block)
    values = list(func.args)
    for _ in range(draw(st.integers(1, 12))):
        kind = draw(st.integers(0, 3))
        if kind == 0:
            values.append(b.const_int(int_type(16),
                                      draw(st.integers(0, 65535))))
        elif kind == 1:
            op = draw(st.sampled_from(_BINOPS))
            x = draw(st.sampled_from(values))
            y = draw(st.sampled_from(values))
            values.append(b.binary(op, x, y))
        elif kind == 2:
            x = draw(st.sampled_from(values))
            values.append(b.not_(x))
        else:
            x = draw(st.sampled_from(values))
            values.append(b.zext(b.trunc(x, int_type(8)), int_type(16)))
    b.ret(values[-1])
    return module


@given(random_function())
@settings(max_examples=60, deadline=None)
def test_print_parse_roundtrip(module):
    verify_module(module)
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text


@given(random_function())
@settings(max_examples=40, deadline=None)
def test_bitcode_roundtrip(module):
    blob = write_module(module)
    restored = read_module(blob)
    assert print_module(restored) == print_module(module)


@given(random_function(), st.lists(st.integers(0, 65535), min_size=4,
                                   max_size=4))
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_function_semantics(module, args):
    """Parse(print(f)) computes the same outputs as f."""
    from repro.sim.interp import _FunctionInterpreter
    from repro.sim.engine import Kernel
    from repro.sim.interp import Design

    def run(mod):
        func = mod.get("f")
        kernel = Kernel()
        design = Design(mod, func, kernel)
        interp = _FunctionInterpreter(design, kernel)
        return interp.call("f", args[:len(func.args)])

    reparsed = parse_module(print_module(module))
    assert run(module) == run(reparsed)
