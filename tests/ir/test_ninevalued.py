"""Nine-valued logic: IEEE 1164 table properties (property-based)."""

import pytest
from hypothesis import given, strategies as st

from repro.ir.ninevalued import (
    LogicVec, VALUES, and_bits, not_bit, or_bits, resolve_bits,
    resolve_many, xor_bits,
)

bit = st.sampled_from(VALUES)
bits3 = st.tuples(bit, bit, bit)


@given(bit, bit)
def test_resolution_commutative(a, b):
    assert resolve_bits(a, b) == resolve_bits(b, a)


@given(bits3)
def test_resolution_associative(abc):
    a, b, c = abc
    assert resolve_bits(resolve_bits(a, b), c) == \
        resolve_bits(a, resolve_bits(b, c))


@given(bit)
def test_resolution_z_is_identity(a):
    # Z is the identity of resolution — except for '-', which the IEEE
    # 1164 table resolves to X against everything but U.
    if a == "-":
        assert resolve_bits(a, "Z") == "X"
    else:
        assert resolve_bits(a, "Z") == a
    assert resolve_bits("Z", a) == resolve_bits(a, "Z")


@given(bit)
def test_resolution_idempotent(a):
    # Idempotent for all values except '-' (IEEE 1164: '-'∥'-' = X).
    expected = "X" if a == "-" else a
    assert resolve_bits(a, a) == expected


@given(bit)
def test_u_dominates_resolution(a):
    assert resolve_bits(a, "U") == "U"


@given(bit, bit)
def test_and_or_commutative(a, b):
    assert and_bits(a, b) == and_bits(b, a)
    assert or_bits(a, b) == or_bits(b, a)
    assert xor_bits(a, b) == xor_bits(b, a)


@given(bit)
def test_and_identity_and_zero(a):
    assert and_bits(a, "0") == "0"
    assert or_bits(a, "1") == "1"


def test_two_valued_subset_matches_boolean():
    for a in "01":
        for b in "01":
            ia, ib = int(a), int(b)
            assert and_bits(a, b) == str(ia & ib)
            assert or_bits(a, b) == str(ia | ib)
            assert xor_bits(a, b) == str(ia ^ ib)
        assert not_bit(a) == str(1 - int(a))


@given(bit, bit)
def test_demorgan_on_x01_subset(a, b):
    # ¬(a ∧ b) == ¬a ∨ ¬b holds after X01 normalization.
    lhs = not_bit(and_bits(a, b))
    rhs = or_bits(not_bit(a), not_bit(b))
    from repro.ir.ninevalued import TO_X01

    assert TO_X01[lhs] == TO_X01[rhs]


# -- LogicVec ---------------------------------------------------------------

vec_text = st.text(alphabet=VALUES, min_size=1, max_size=16)


@given(vec_text)
def test_vec_roundtrip_str(text):
    assert str(LogicVec(text)) == text


@given(st.integers(0, 2**16 - 1))
def test_vec_int_roundtrip(value):
    vec = LogicVec.from_int(value, 16)
    assert vec.is_two_valued
    assert vec.to_int() == value


@given(vec_text)
def test_vec_not_involution_on_01(text):
    vec = LogicVec(text)
    double = vec.not_().not_()
    assert double.to_x01().bits == vec.to_x01().bits or \
        not vec.is_two_valued


@given(vec_text, vec_text)
def test_vec_resolution_width_checked(a, b):
    va, vb = LogicVec(a), LogicVec(b)
    if va.width != vb.width:
        with pytest.raises(ValueError):
            va.resolve(vb)
    else:
        assert va.resolve(vb).width == va.width


@given(st.lists(st.integers(0, 255), min_size=1, max_size=5))
def test_resolve_many_of_equal_drivers(values):
    vecs = [LogicVec.from_int(values[0], 8) for _ in values]
    assert resolve_many(vecs) == vecs[0]


def test_vec_immutable():
    vec = LogicVec("01")
    with pytest.raises(AttributeError):
        vec.bits = "10"


def test_invalid_bit_rejected():
    with pytest.raises(ValueError):
        LogicVec("012")


def test_empty_vec_rejected():
    with pytest.raises(ValueError):
        LogicVec("")
