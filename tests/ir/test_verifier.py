"""Verifier: every class of malformed IR must be caught (failure
injection)."""

import pytest

from repro.ir import (
    Builder, Entity, Function, Module, NETLIST, Process, STRUCTURAL,
    TimeValue, VerificationError, int_type, parse_module, signal_type,
    verify_module, verify_unit,
)


def _expect_issue(module, fragment, level=None):
    with pytest.raises(VerificationError) as excinfo:
        if level is None:
            verify_module(module)
        else:
            verify_module(module, level=level)
    assert fragment in str(excinfo.value)


def test_block_without_terminator():
    func = Function("f", [], [], int_type(8))
    block = func.create_block("entry")
    Builder.at_end(block).const_int(int_type(8), 1)
    module = Module()
    module.add(func)
    _expect_issue(module, "terminator")


def test_wait_in_function_rejected():
    module = parse_module("""
    proc @p (i8$ %s) -> () {
    entry:
      halt
    }
    """)
    # Hand-build a function containing a wait.
    func = Function("f", [], [], int_type(8))
    block = func.create_block("entry")
    b = Builder.at_end(block)
    t = b.const_time(TimeValue(1))
    b.wait(block, t, [])
    module.add(func)
    _expect_issue(module, "'wait' is not allowed in a func")


def test_ret_type_mismatch():
    func = Function("f", [], [], int_type(8))
    block = func.create_block("entry")
    b = Builder.at_end(block)
    v = b.const_int(int_type(16), 1)
    b.ret(v)
    module = Module()
    module.add(func)
    _expect_issue(module, "ret type")


def test_reg_in_process_rejected():
    module = parse_module("""
    proc @p (i1$ %clk) -> (i8$ %q) {
    entry:
      halt
    }
    """)
    proc = module.get("p")
    b = Builder(proc.entry, 0)
    zero = b.const_int(int_type(8), 0)
    clkp = b.prb(proc.inputs[0])
    b.reg(proc.outputs[0], [("rise", zero, clkp, None, None)])
    _expect_issue(module, "'reg' is not allowed in a proc")


def test_control_flow_in_entity_rejected():
    entity = Entity("e", [], [], [], [])
    Builder.at_end(entity.body).halt()
    module = Module()
    module.add(entity)
    _expect_issue(module, "not allowed in a entity")


def test_use_before_def_in_entity():
    entity = Entity("e", [], [], [], [])
    b = Builder.at_end(entity.body)
    one = b.const_int(int_type(8), 1)
    add = b.add(one, one)
    # Move the add before its operand.
    entity.body.remove(add)
    entity.body.insert(0, add)
    module = Module()
    module.add(entity)
    _expect_issue(module, "before its definition")


def test_dominance_violation():
    module = parse_module("""
    func @f (i1 %c) i8 {
    entry:
      br %c, %left, %right
    left:
      %x = const i8 1
      br %join
    right:
      br %join
    join:
      ret i8 %x
    }
    """)
    _expect_issue(module, "not dominated")


def test_phi_missing_incoming():
    module = parse_module("""
    func @f (i1 %c) i8 {
    entry:
      %a = const i8 1
      br %c, %left, %join
    left:
      br %join
    join:
      %p = phi i8 [%a, %left]
      ret i8 %p
    }
    """)
    _expect_issue(module, "missing incoming")


def test_inst_signature_mismatch():
    module = parse_module("""
    entity @child (i8$ %a) -> () {
      %x = prb i8$ %a
    }
    entity @parent () -> () {
      %z = const i16 0
      %s = sig i16 %z
      inst @child (i16$ %s) -> ()
    }
    """)
    _expect_issue(module, "input types")


def test_inst_of_undefined_unit():
    module = parse_module("""
    entity @parent () -> () {
      %z = const i8 0
      %s = sig i8 %z
      inst @ghost (i8$ %s) -> ()
    }
    """)
    _expect_issue(module, "undefined unit")


def test_call_argument_mismatch():
    module = parse_module("""
    func @f (i8 %x) i8 {
    entry:
      ret i8 %x
    }
    proc @p () -> () {
    entry:
      %v = const i16 1
      %r = call i8 @f (i16 %v)
      halt
    }
    """)
    _expect_issue(module, "argument types")


def test_unknown_intrinsic():
    module = parse_module("""
    proc @p () -> () {
    entry:
      call void @llhd.bogus ()
      halt
    }
    """)
    _expect_issue(module, "unknown intrinsic")


def test_structural_level_rejects_processes():
    module = parse_module("""
    proc @p (i8$ %s) -> () {
    entry:
      halt
    }
    """)
    _expect_issue(module, "not allowed in structural", level=STRUCTURAL)


def test_netlist_level_rejects_logic():
    module = parse_module("""
    entity @e (i8$ %a, i8$ %b) -> (i8$ %y) {
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %sum = add i8 %ap, %bp
      %t = const time 0s
      drv i8$ %y, %sum after %t
    }
    """)
    _expect_issue(module, "not allowed in netlist", level=NETLIST)


def test_valid_netlist_module_verifies_at_netlist_level():
    module = parse_module("""
    entity @net (i8$ %a) -> (i8$ %y) {
      %z = const i8 0
      %t0 = const time 1ns
      %s = sig i8 %z
      con i8$ %s, %a
      %d = del i8$ %s after %t0
      con i8$ %y, %d
    }
    """)
    verify_module(module, level=NETLIST)


def test_parser_rejects_use_before_def():
    from repro.ir import ParseError

    with pytest.raises(ParseError, match="undefined value"):
        parse_module("""
        entity @net () -> () {
          %d = sig i8 %z
          %z = const i8 0
        }
        """)
