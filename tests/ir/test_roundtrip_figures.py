"""Parse→print→parse round-trips on the paper's own LLHD listings.

Figure 2 (the accumulator testbench) and Figure 5 (the lowered accumulator)
are the paper's reference programs; being able to ingest them verbatim is
the baseline fidelity check for the parser and printer.
"""

import pytest

from repro.ir import parse_module, print_module, verify_module

FIGURE2 = """
declare entity @acc (i1$, i32$, i1$) -> (i32$)
entity @acc_tb () -> () {
  %zero0 = const i1 0
  %zero1 = const i32 0
  %clk = sig i1 %zero0
  %en = sig i1 %zero0
  %x = sig i32 %zero1
  %q = sig i32 %zero1
  inst @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q)
  inst @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en)
}
proc @acc_tb_initial (i32$ %q) -> (i1$ %clk, i32$ %x, i1$ %en) {
entry:
  %bit0 = const i1 0
  %bit1 = const i1 1
  %zero = const i32 0
  %one = const i32 1
  %many = const i32 1337
  %del1ns = const time 1ns
  %del2ns = const time 2ns
  %i = var i32 %zero
  drv i1$ %en, %bit1 after %del2ns
  br %loop
loop:
  %ip = ld i32* %i
  drv i32$ %x, %ip after %del2ns
  drv i1$ %clk, %bit1 after %del1ns
  drv i1$ %clk, %bit0 after %del2ns
  wait %next for %del2ns
next:
  %qp = prb i32$ %q
  call void @acc_tb_check (i32 %ip, i32 %qp)
  %in = add i32 %ip, %one
  st i32* %i, %in
  %cont = ult i32 %ip, %many
  br %cont, %end, %loop
end:
  halt
}
func @acc_tb_check (i32 %i, i32 %q) void {
entry:
  %one = const i32 1
  %two = const i32 2
  %ip1 = add i32 %i, %one
  %ixip1 = mul i32 %i, %ip1
  %qexp = div i32 %ixip1, %two
  %eq = eq i32 %qexp, %q
  call void @llhd.assert (i1 %eq)
  ret
}
"""

FIGURE5_STRUCTURAL = """
entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
  %delay = const time 1ns
  %clkp = prb i1$ %clk
  %dp = prb i32$ %d
  reg i32$ %q, %dp rise %clkp after %delay
}
entity @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
  %qp = prb i32$ %q
  %xp = prb i32$ %x
  %enp = prb i1$ %en
  %sum = add i32 %qp, %xp
  %delay = const time 2ns
  %dns = [i32 %qp, %sum]
  %dn = mux i32 %dns, %enp
  drv i32$ %d, %dn after %delay
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  %q1 = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q1)
  inst @acc_comb (i32$ %q1, i32$ %x, i1$ %en) -> (i32$ %d)
}
"""

FIGURE5_BEHAVIOURAL_FF = """
proc @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
init:
  %clk0 = prb i1$ %clk
  wait %check for %clk
check:
  %clk1 = prb i1$ %clk
  %chg = neq i1 %clk0, %clk1
  %posedge = and i1 %chg, %clk1
  br %posedge, %init, %event
event:
  %dp = prb i32$ %d
  %delay = const time 1ns
  drv i32$ %q, %dp after %delay
  br %init
}
proc @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
entry:
  %qp = prb i32$ %q
  %enp = prb i1$ %en
  %delay = const time 2ns
  drv i32$ %d, %qp after %delay
  br %enp, %final, %enabled
enabled:
  %xp = prb i32$ %x
  %sum = add i32 %qp, %xp
  drv i32$ %d, %sum after %delay
  br %final
final:
  wait %entry for %q, %x, %en
}
"""


@pytest.mark.parametrize("text", [FIGURE2, FIGURE5_STRUCTURAL,
                                  FIGURE5_BEHAVIOURAL_FF],
                         ids=["figure2", "figure5-structural",
                              "figure5-behavioural"])
def test_roundtrip(text):
    module = parse_module(text)
    printed = print_module(module)
    module2 = parse_module(printed)
    assert print_module(module2) == printed


def test_figure2_verifies():
    module = parse_module(FIGURE2)
    verify_module(module)


def test_figure5_structural_verifies_at_structural_level():
    from repro.ir import STRUCTURAL

    module = parse_module(FIGURE5_STRUCTURAL)
    verify_module(module, level=STRUCTURAL)


def test_figure2_unit_structure():
    module = parse_module(FIGURE2)
    tb = module.get("acc_tb")
    assert tb.is_entity
    initial = module.get("acc_tb_initial")
    assert initial.is_process
    assert [a.name for a in initial.inputs] == ["q"]
    assert [a.name for a in initial.outputs] == ["clk", "x", "en"]
    check = module.get("acc_tb_check")
    assert check.is_function
    assert len(check.blocks) == 1


def test_figure5_behavioural_temporal_regions():
    """@acc_ff has two TRs, @acc_comb has one (section 4.3.1)."""
    from repro.analysis import TemporalRegions

    module = parse_module(FIGURE5_BEHAVIOURAL_FF)
    ff = TemporalRegions(module.get("acc_ff"))
    comb = TemporalRegions(module.get("acc_comb"))
    # @acc_ff: init is TR0; check/event inherit a new TR after the wait.
    assert ff.count == 2
    assert comb.count == 1
