"""Round-trip regression tests for nine-valued logic constants.

``const lN "..."`` constants — including the weak/dontcare states ``L``,
``H``, ``W``, ``-`` that never occur in two-valued designs — must survive
parser → printer → bitcode → parser byte-identically.  Also pins the
lexer fix these tests surfaced: block labels containing dots (the Moore
frontend emits ``if.then1:``-style labels) used to print fine but fail to
re-parse, so no frontend-generated module could round-trip as text.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    Builder, Function, Module, int_type, parse_module, print_module,
    verify_module,
)
from repro.ir.bitcode import read_module, write_module
from repro.ir.ninevalued import LogicVec, VALUES


def _const_module(texts):
    module = Module()
    func = Function("f", [], [], int_type(1))
    module.add(func)
    b = Builder.at_end(func.create_block("entry"))
    consts = [b.const_logic(t) for t in texts]
    result = b.eq(consts[0], consts[0])
    b.ret(result)
    return module


def _roundtrip(module):
    """parser → printer → bitcode → parser; returns the stable text."""
    text = print_module(module)
    reparsed = parse_module(text)
    verify_module(reparsed)
    assert print_module(reparsed) == text
    restored = read_module(write_module(reparsed))
    verify_module(restored)
    assert print_module(restored) == text
    final = parse_module(print_module(restored))
    assert print_module(final) == text
    return text


def test_weak_and_dontcare_constants_roundtrip():
    text = _roundtrip(_const_module(["LH-W", "UX01ZWLH-", "Z-", "HL"]))
    assert 'const l4 "LH-W"' in text
    assert 'const l9 "UX01ZWLH-"' in text


@pytest.mark.parametrize("value", list(VALUES))
def test_every_single_state_constant_roundtrips(value):
    text = _roundtrip(_const_module([value, value * 7]))
    assert f'const l1 "{value}"' in text
    assert f'const l7 "{value * 7}"' in text


def test_all_state_pairs_roundtrip():
    texts = ["".join(p) for p in itertools.product(VALUES, repeat=2)]
    _roundtrip(_const_module(texts))


@given(st.text(alphabet=VALUES, min_size=1, max_size=64))
@settings(max_examples=100, deadline=None)
def test_random_logic_constants_roundtrip(text):
    stable = _roundtrip(_const_module([text]))
    assert f'const l{len(text)} "{text}"' in stable
    # The parsed constant is value-identical, not merely text-identical.
    reparsed = parse_module(stable)
    const = next(i for i in next(iter(reparsed)).instructions()
                 if i.opcode == "const")
    assert const.attrs["value"] == LogicVec(text)


def test_dotted_block_labels_roundtrip():
    """Labels like ``if.then1`` (Moore output) must re-parse as text."""
    module = Module()
    func = Function("f", [int_type(1)], ["c"], int_type(8))
    module.add(func)
    entry = func.create_block("entry")
    then = func.create_block("if.then1")
    join = func.create_block("if.join2")
    b = Builder.at_end(entry)
    b.const_logic("01XZ")
    b.br_cond(func.args[0], join, then)
    b.set_insert_point(then)
    b.br(join)
    b.set_insert_point(join)
    b.ret(b.const_int(int_type(8), 7))
    text = _roundtrip(module)
    assert "if.then1:" in text and "if.join2:" in text


def test_four_state_design_module_roundtrips():
    """A whole Moore-compiled nine-valued design survives the full loop."""
    from repro.designs import compile_design

    module = compile_design("gray_l", cycles=5)
    _roundtrip(module)
