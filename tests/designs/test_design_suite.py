"""Every Table 2 design compiles, simulates, and self-checks cleanly."""

import pytest

from repro.designs import (
    ALL_DESIGNS, DESIGNS, FOUR_STATE_ORDER, TABLE2_ORDER,
    expand_cycle_budgets, simulate_design,
)
from repro.ir import verify_module
from repro.designs import compile_design

SMALL_CYCLES = expand_cycle_budgets({
    "gray": 40, "fir": 25, "lfsr": 40, "lzc": 25, "fifo": 40,
    "cdc_gray": 30, "cdc_strobe": 12, "rr_arbiter": 40,
    "stream_delayer": 40, "riscv": 150, "sorter": 10,
})


def test_registry_is_complete():
    assert sorted(DESIGNS) == sorted(ALL_DESIGNS)
    # The paper's ten designs, the sorter stress extension, and the
    # nine-valued variants of the logic-heavy designs.
    assert len(TABLE2_ORDER) == 11
    assert len(DESIGNS) == 11 + len(FOUR_STATE_ORDER)
    assert all(DESIGNS[name].four_state for name in FOUR_STATE_ORDER)


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_design_compiles_and_verifies(name):
    module = compile_design(name, cycles=SMALL_CYCLES[name])
    verify_module(module)


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_design_self_checks(name):
    result = simulate_design(name, cycles=SMALL_CYCLES[name])
    assert result.assertion_failures == [], \
        f"{name}: {result.assertion_failures[:3]}"
    assert result.kernel.finished or result.final_time_fs > 0


def test_riscv_program_assembles():
    from repro.designs import riscv
    from repro.designs.riscv_asm import disassemble_word

    words = riscv.program_words(n=10)
    assert len(words) > 20
    # Spot-check: first instruction is li t0, 10 == addi t0, zero, 10.
    assert disassemble_word(words[0]) == "addi x5, x0, 10"


def test_riscv_expected_results():
    from repro.designs.riscv import expected_results, fib

    assert fib(10) == 55
    results = expected_results(10)
    assert results[0] == 55
    assert results[5] == sum(results[:5])
