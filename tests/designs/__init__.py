"""Design-suite test helpers shared across test packages."""

from repro.designs import expand_cycle_budgets

#: Small per-design cycle budgets shared by the cross-engine equivalence
#: oracle and the staged semantic-preservation harness: enough cycles
#: for every testbench to exercise its self-checks without making the
#: interpreter runs slow.  ``_l`` variants share their sibling's budget.
SUITE_TEST_CYCLES = expand_cycle_budgets({
    "gray": 30, "fir": 20, "lfsr": 30, "lzc": 20, "fifo": 30,
    "cdc_gray": 25, "cdc_strobe": 12, "rr_arbiter": 30,
    "stream_delayer": 30, "riscv": 150, "sorter": 6,
})
