"""The ``python -m repro.lint`` CLI: inputs, formats, baselines, exit
codes.  ``main(argv)`` is called in-process."""

import io
import json
import pathlib

import pytest

from repro.lint.__main__ import main

CORPUS = pathlib.Path(__file__).parent / "corpus"
RACE = str(CORPUS / "race.llhd")
CDC = str(CORPUS / "cdc_bad.llhd")


def test_file_input_reports_findings(capsys):
    assert main([RACE]) == 1
    out = capsys.readouterr().out
    assert "error: RACE001" in out
    assert out.rstrip().endswith("1 error(s), 0 warning(s)")


def test_json_format(capsys):
    assert main([RACE, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 1
    assert payload["suppressed"] == 0
    assert payload["diagnostics"][0]["code"] == "RACE001"


def test_multiple_files_accumulate(capsys):
    assert main([RACE, CDC, "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {d["code"] for d in payload["diagnostics"]} == \
        {"RACE001", "CDC001"}


def test_baseline_roundtrip(tmp_path, capsys):
    base = tmp_path / "base.json"
    assert main([RACE, "--update-baseline", str(base)]) == 0
    assert json.loads(base.read_text())["diagnostics"]
    assert main([RACE, "--baseline", str(base)]) == 0
    out = capsys.readouterr().out
    assert "1 finding(s) suppressed" in out
    assert "0 error(s), 0 warning(s)" in out


def test_baseline_keeps_fresh_findings(tmp_path, capsys):
    base = tmp_path / "base.json"
    assert main([RACE, "--update-baseline", str(base)]) == 0
    assert main([RACE, CDC, "--baseline", str(base),
                 "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["suppressed"] == 1
    assert [d["code"] for d in payload["diagnostics"]] == ["CDC001"]


def test_fail_on_error_passes_warnings(capsys):
    assert main([CDC]) == 1
    assert main([CDC, "--fail-on", "error"]) == 0


def test_design_input_clean(capsys):
    assert main(["--design", "gray"]) == 0
    assert "0 error(s), 0 warning(s)" in capsys.readouterr().out


def test_unknown_design(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--design", "nope"])
    assert excinfo.value.code == 2


def test_files_and_designs_conflict(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([RACE, "--design", "gray"])
    assert excinfo.value.code == 2


def test_no_input(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2


def test_missing_file(capsys):
    assert main(["/no/such/file.llhd"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_parse_error(tmp_path, capsys):
    bad = tmp_path / "bad.llhd"
    bad.write_text("entity @oops (")
    assert main([str(bad)]) == 2
    assert "parse error" in capsys.readouterr().err


def test_no_entity_to_lint(tmp_path, capsys):
    empty = tmp_path / "empty.llhd"
    empty.write_text("")
    assert main([str(empty)]) == 2
    assert "no entity to lint" in capsys.readouterr().err


def test_bad_baseline_file(tmp_path, capsys):
    base = tmp_path / "broken.json"
    base.write_text("{not json")
    assert main([RACE, "--baseline", str(base)]) == 2
    assert "cannot load baseline" in capsys.readouterr().err


def test_stdin_input(monkeypatch, capsys):
    text = pathlib.Path(RACE).read_text(encoding="utf-8")
    monkeypatch.setattr("sys.stdin", io.StringIO(text))
    assert main(["-"]) == 1
    assert "RACE001" in capsys.readouterr().out


def test_top_selects_one_entity(capsys):
    # @drv_one alone has a single driver: clean.
    assert main([RACE, "-t", "drv_one"]) == 0


def test_top_not_in_file(capsys):
    assert main([RACE, "-t", "missing"]) == 2
    assert "lint failed" in capsys.readouterr().err


def test_all_designs_merges_explicit_names(capsys):
    assert main(["--design", "gray", "--all-designs",
                 "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["errors"] == 0 and payload["warnings"] == 0
