"""The seeded bad-design corpus: each design triggers exactly its
intended diagnostic code, and nothing else."""

import pathlib

import pytest

from repro.ir import parse_module
from repro.lint import DiagnosticSet, lint_module, root_entities

CORPUS = pathlib.Path(__file__).parent / "corpus"

#: file -> the one code it was seeded to trigger.
EXPECTED = {
    "race.llhd": "RACE001",
    "comb_loop.llhd": "LOOP001",
    "cdc_bad.llhd": "CDC001",
    "xclock.llhd": "CDC002",
}


def lint_file(name):
    text = (CORPUS / name).read_text(encoding="utf-8")
    module = parse_module(text, name=name)
    diagnostics = DiagnosticSet()
    for top in root_entities(module):
        diagnostics.extend(lint_module(module, top, unit=top))
    return diagnostics


@pytest.mark.parametrize("name,code", sorted(EXPECTED.items()))
def test_corpus_triggers_exactly_its_code(name, code):
    diagnostics = lint_file(name)
    assert diagnostics.codes() == [code], \
        f"{name}: expected only {code}, got {diagnostics.render_text()}"
    assert diagnostics.count(code=code) == 1


def test_race_diagnostic_names_both_drivers():
    diag, = lint_file("race.llhd")
    text = diag.render()
    assert "drv_one" in text and "drv_two" in text


def test_loop_diagnostic_lists_the_cycle():
    diag, = lint_file("comb_loop.llhd")
    assert diag.severity == "error"
    # The three-net cycle a -> b -> c -> a should be spelled out.
    text = diag.render()
    assert all(net in text for net in ("a", "b", "c"))


def test_cdc_diagnostic_names_both_domains():
    diag, = lint_file("cdc_bad.llhd")
    assert diag.severity == "warning"
    text = diag.render()
    assert "clk_a" in text and "clk_b" in text


def test_xclock_diagnostic_points_at_the_clock():
    diag, = lint_file("xclock.llhd")
    assert diag.severity == "warning"
    assert "clk" in diag.render()
