"""Unit tests for the diagnostics engine: codes, rendering, JSON,
baseline suppression, and the analysis/pass integration."""

import json

import pytest

from repro.analysis import AnalysisManager
from repro.ir import parse_module
from repro.lint import (
    CODES, Baseline, Diagnostic, DiagnosticSet, lower_design_module,
)
from repro.passes import PassManager

RACY = """
entity @a () -> (i8$ %bus) {
  %0 = const i8 1
  %t = const time 0s
  drv i8$ %bus, %0 after %t
}
entity @b () -> (i8$ %bus) {
  %0 = const i8 2
  %t = const time 0s
  drv i8$ %bus, %0 after %t
}
entity @top () -> () {
  %init = const i8 0
  %bus = sig i8 %init
  inst @a () -> (i8$ %bus)
  inst @b () -> (i8$ %bus)
}
"""


# -- Diagnostic ----------------------------------------------------------------


def test_codes_table_is_complete():
    for code, (severity, summary) in CODES.items():
        assert severity in ("error", "warning")
        assert summary


def test_unknown_code_rejected():
    with pytest.raises(ValueError):
        Diagnostic("BOGUS42", "nope")


def test_severity_defaults_from_code():
    assert Diagnostic("RACE001", "m").severity == "error"
    assert Diagnostic("CDC001", "m").severity == "warning"


def test_key_ignores_message():
    a = Diagnostic("LOOP001", "one wording", unit="u", location="net")
    b = Diagnostic("LOOP001", "another wording", unit="u", location="net")
    assert a.key() == b.key()


def test_render_includes_notes():
    diag = Diagnostic("RACE001", "conflict", unit="top", location="bus",
                      notes=("driver one", "driver two"))
    text = diag.render()
    assert text.splitlines()[0] == "error: RACE001: bus: conflict"
    assert "  note: driver one" in text
    assert repr(diag) == "<RACE001 @ bus>"


def test_json_roundtrip():
    diag = Diagnostic("CDC002", "x clock", unit="u@netlist",
                      location="clk", notes=("n",))
    back = Diagnostic.from_json(json.loads(json.dumps(diag.to_json())))
    assert back.key() == diag.key()
    assert back.severity == diag.severity
    assert back.notes == diag.notes


# -- DiagnosticSet -------------------------------------------------------------


def _sample_set():
    diagnostics = DiagnosticSet()
    diagnostics.emit("CDC001", "crossing", unit="u", location="z")
    diagnostics.emit("RACE001", "race", unit="u", location="a")
    diagnostics.emit("LOOP001", "loop", unit="u", location="b")
    return diagnostics


def test_sorted_puts_errors_first():
    codes = [d.code for d in _sample_set().sorted()]
    assert codes == ["LOOP001", "RACE001", "CDC001"]


def test_counts_and_codes():
    diagnostics = _sample_set()
    assert len(diagnostics) == 3
    assert diagnostics.count("error") == 2
    assert diagnostics.count("warning") == 1
    assert diagnostics.count(code="RACE001") == 1
    assert diagnostics.codes() == ["CDC001", "LOOP001", "RACE001"]


def test_render_text_summary_line():
    text = _sample_set().render_text(header="# hi")
    assert text.startswith("# hi\n")
    assert text.endswith("2 error(s), 1 warning(s)")


def test_render_json_counts_and_extras():
    payload = json.loads(_sample_set().render_json(suppressed=4))
    assert payload["errors"] == 2
    assert payload["warnings"] == 1
    assert payload["suppressed"] == 4
    assert [d["code"] for d in payload["diagnostics"]] == \
        ["LOOP001", "RACE001", "CDC001"]


# -- Baseline ------------------------------------------------------------------


def test_suppress_splits_known_from_fresh():
    diagnostics = _sample_set()
    baseline = Baseline({("RACE001", "u", "a")})
    fresh, suppressed = diagnostics.suppress(baseline)
    assert [d.code for d in suppressed] == ["RACE001"]
    assert fresh.codes() == ["CDC001", "LOOP001"]


def test_baseline_dump_load_roundtrip(tmp_path):
    diagnostics = _sample_set()
    path = tmp_path / "base.json"
    Baseline.from_diagnostics(diagnostics).dump(path)
    loaded = Baseline.load(path)
    fresh, suppressed = diagnostics.suppress(loaded)
    assert not len(fresh) and len(suppressed) == 3


def test_baseline_load_tolerates_missing_fields(tmp_path):
    path = tmp_path / "base.json"
    path.write_text(json.dumps({"diagnostics": [{"code": "LOOP001"}]}))
    assert Baseline.load(path).keys == {("LOOP001", "", "")}


# -- analysis / pass integration -----------------------------------------------


def test_lint_analysis_is_cached():
    module = parse_module(RACY)
    am = AnalysisManager()
    diagnostics = am.get("lint", module)
    assert diagnostics.codes() == ["RACE001"]
    assert am.get("lint", module) is diagnostics


def test_lint_model_analysis_covers_roots():
    module = parse_module(RACY)
    models = AnalysisManager().get("lint-model", module)
    assert list(models) == ["top"]


def test_lint_pass_reports_stats():
    module = parse_module(RACY)
    pm = PassManager("lint")
    pm.run(module)
    assert pm.records["lint"].statistics.get("RACE001") == 1


def test_lower_design_module_rejects_unknown_level():
    with pytest.raises(ValueError):
        lower_design_module(parse_module(RACY), "rtl")
