"""No-false-positives sweep: every design of the evaluation suite lints
clean, both as compiled (behavioural) and after the full lowering
pipeline down to the netlist level."""

import pytest

from repro.designs import ALL_DESIGNS
from repro.lint import lint_design

_cache = {}


def _lint(name, level):
    key = (name, level)
    if key not in _cache:
        _cache[key] = lint_design(name, level=level)
    return _cache[key]


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_behavioural_lints_clean(name):
    diagnostics = _lint(name, "behavioural")
    assert not len(diagnostics), diagnostics.render_text()


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_netlist_lints_clean(name):
    diagnostics = _lint(name, "netlist")
    assert not len(diagnostics), diagnostics.render_text()
