"""Static verdicts vs simulation ground truth.

For every *error*-severity finding on the bad corpus (races,
oscillations) the scheduler sanitizer must reproduce the same code
dynamically — and without the sanitizer the run must die on the same
hazard.  The *warning*-severity findings (CDC) are static-only: the
sanitizer stays silent on them.
"""

import pathlib

import pytest

from repro.ir import parse_module
from repro.lint import lint_module
from repro.sim import SimulationError, simulate

CORPUS = pathlib.Path(__file__).parent / "corpus"

BACKENDS = ("interp", "blaze", "cycle")


def _load(name, top):
    text = (CORPUS / name).read_text(encoding="utf-8")
    return parse_module(text, name=name), top


@pytest.mark.parametrize("backend", BACKENDS)
def test_race_reproduces_dynamically(backend):
    module, top = _load("race.llhd", "race_top")
    assert lint_module(module, top).codes() == ["RACE001"]
    result = simulate(module, top, until_fs=2_000_000, backend=backend,
                      sanitize=True)
    findings = result.findings
    assert [f.code for f in findings] == ["RACE001"]
    drivers = findings[0].drivers
    assert len(drivers) == 2
    assert any("drv_one" in d for d in drivers)
    assert any("drv_two" in d for d in drivers)


@pytest.mark.parametrize("backend", BACKENDS)
def test_race_is_fatal_without_sanitizer(backend):
    module, top = _load("race.llhd", "race_top")
    with pytest.raises(SimulationError) as excinfo:
        simulate(module, top, until_fs=2_000_000, backend=backend)
    message = str(excinfo.value)
    assert "drv_one" in message and "drv_two" in message


@pytest.mark.parametrize("backend", BACKENDS)
def test_oscillation_reproduces_dynamically(backend):
    module, top = _load("comb_loop.llhd", "loop3")
    assert lint_module(module, top).codes() == ["LOOP001"]
    result = simulate(module, top, until_fs=5_000_000, backend=backend,
                      sanitize=True)
    codes = [f.code for f in result.findings]
    assert "LOOP001" in codes
    # The oscillating nets are named in the finding.
    location = result.findings[codes.index("LOOP001")]
    assert location.message


@pytest.mark.parametrize("backend", BACKENDS)
def test_oscillation_is_fatal_without_sanitizer(backend):
    module, top = _load("comb_loop.llhd", "loop3")
    with pytest.raises(SimulationError):
        simulate(module, top, until_fs=5_000_000, backend=backend)


@pytest.mark.parametrize("name,top", [("cdc_bad.llhd", "cdc_bad"),
                                      ("xclock.llhd", "xclk")])
def test_cdc_warnings_are_static_only(name, top):
    """CDC hazards are legal scheduler behaviour: the sanitizer has
    nothing to report, which is exactly why they are warnings."""
    module, _ = _load(name, top)
    assert all(code.startswith("CDC")
               for code in lint_module(module, top).codes())
    result = simulate(module, top, until_fs=10_000_000, sanitize=True)
    assert result.findings == []


def test_findings_empty_without_sanitize():
    module, top = _load("cdc_bad.llhd", "cdc_bad")
    result = simulate(module, top, until_fs=2_000_000)
    assert result.findings == []
    assert result.sanitizer is None
