"""Targeted checker-behaviour tests on hand-written IR: the RACE002
merge conflict, driver-class compatibility, loop stability filtering,
the CDC synchronizer-head rules, and static-model corner constructs."""

import pytest

from repro.ir import parse_module
from repro.lint import DesignModel, lint_design, lint_module


def lint_text(text, top):
    return lint_module(parse_module(text), top)


# -- RACE002: con-merged initial values ----------------------------------------


def test_con_conflicting_initials_race002():
    diagnostics = lint_text("""
entity @t () -> () {
  %i0 = const i8 3
  %i1 = const i8 7
  %a = sig i8 %i0
  %b = sig i8 %i1
  con i8$ %a, %b
}
""", "t")
    assert diagnostics.codes() == ["RACE002"]
    diag, = diagnostics
    assert "3" in diag.message and "7" in diag.message


def test_con_equal_initials_clean():
    assert not len(lint_text("""
entity @t () -> () {
  %i0 = const i8 3
  %i1 = const i8 3
  %a = sig i8 %i0
  %b = sig i8 %i1
  con i8$ %a, %b
}
""", "t"))


def test_con_logic_initials_resolve():
    # lN initials resolve via IEEE 1164: never a RACE002.
    assert not len(lint_text("""
entity @t () -> () {
  %i0 = const l1 "0"
  %i1 = const l1 "1"
  %a = sig l1 %i0
  %b = sig l1 %i1
  con l1$ %a, %b
}
""", "t"))


# -- RACE001: driver-class compatibility ---------------------------------------


def test_edge_vs_timed_drivers_race():
    """A register and a free-running timed process on one unresolved
    net can mature transactions in the same instant."""
    diagnostics = lint_text("""
proc @stim () -> (i1$ %q) {
entry:
  %v = const i1 1
  %t = const time 1ns
  drv i1$ %q, %v after %t
  wait %entry for %t
}
entity @top () -> () {
  %z = const i1 0
  %t0 = const time 0s
  %t1 = const time 1ns
  %q = sig i1 %z
  %clk = sig i1 %z
  %d = sig i1 %z
  %pc = prb i1$ %clk
  %nc = not i1 %pc
  drv i1$ %clk, %nc after %t1
  %pd = prb i1$ %d
  reg i1$ %q, %pd rise %pc after %t0
  inst @stim () -> (i1$ %q)
}
""", "top")
    assert diagnostics.codes() == ["RACE001"]


# -- LOOP001: stability filtering ----------------------------------------------


def test_single_net_self_oscillator():
    diagnostics = lint_text("""
entity @t () -> () {
  %z = const i1 0
  %t0 = const time 0s
  %a = sig i1 %z
  %pa = prb i1$ %a
  %na = not i1 %pa
  drv i1$ %a, %na after %t0
}
""", "t")
    assert diagnostics.codes() == ["LOOP001"]


def test_value_preserving_cycle_not_flagged():
    # a <-> b through plain probes holds its value: no oscillation.
    assert not len(lint_text("""
entity @t () -> () {
  %z = const i1 0
  %t0 = const time 0s
  %a = sig i1 %z
  %b = sig i1 %z
  %pa = prb i1$ %a
  %pb = prb i1$ %b
  drv i1$ %a, %pb after %t0
  drv i1$ %b, %pa after %t0
}
""", "t"))


# -- CDC001: the synchronizer-head rules ---------------------------------------

_CDC_PRELUDE = """
  %z = const i1 0
  %t0 = const time 0s
  %ta = const time 1ns
  %tb = const time 700ps
  %clk_a = sig i1 %z
  %clk_b = sig i1 %z
  %d = sig i1 %z
  %own = sig i1 %z
  %q_a = sig i1 %z
  %q_b = sig i1 %z
  %pa = prb i1$ %clk_a
  %na = not i1 %pa
  drv i1$ %clk_a, %na after %ta
  %pb = prb i1$ %clk_b
  %nb = not i1 %pb
  drv i1$ %clk_b, %nb after %tb
  %pd = prb i1$ %d
  reg i1$ %q_a, %pd rise %pa after %t0
  %pqa = prb i1$ %q_a
  %pown = prb i1$ %own
"""


def _cdc_case(body):
    return lint_text("entity @t () -> () {" + _CDC_PRELUDE + body + "\n}",
                     "t")


def test_two_stage_synchronizer_is_legal():
    assert not len(_cdc_case("""
  reg i1$ %q_b, %pqa rise %pb after %t0
  %pqb = prb i1$ %q_b
  %q_b2 = sig i1 %z
  reg i1$ %q_b2, %pqb rise %pb after %t0
"""))


def test_enable_crossing_is_flagged():
    diagnostics = _cdc_case("""
  reg i1$ %q_b, %pown rise %pb if %pqa after %t0
""")
    assert diagnostics.codes() == ["CDC001"]
    assert "enable" in next(iter(diagnostics)).message


def test_head_feeding_comb_logic_is_flagged():
    diagnostics = _cdc_case("""
  reg i1$ %q_b, %pqa rise %pb after %t0
  %pqb = prb i1$ %q_b
  %m = not i1 %pqb
  %junk = sig i1 %z
  drv i1$ %junk, %m after %t0
""")
    assert diagnostics.codes() == ["CDC001"]
    assert "combinational logic" in next(iter(diagnostics)).message


def test_resampling_in_third_domain_is_flagged():
    diagnostics = _cdc_case("""
  %clk_c = sig i1 %z
  %tc = const time 900ps
  %pc = prb i1$ %clk_c
  %nc = not i1 %pc
  drv i1$ %clk_c, %nc after %tc
  reg i1$ %q_b, %pqa rise %pb after %t0
  %pqb = prb i1$ %q_b
  %q_c = sig i1 %z
  reg i1$ %q_c, %pqb rise %pc after %t0
""")
    assert diagnostics.codes() == ["CDC001"]
    assert "different domain" in next(iter(diagnostics)).message


def test_head_gating_a_register_is_flagged():
    diagnostics = _cdc_case("""
  reg i1$ %q_b, %pqa rise %pb after %t0
  %pqb = prb i1$ %q_b
  %q_b2 = sig i1 %z
  reg i1$ %q_b2, %pown rise %pb if %pqb after %t0
""")
    assert diagnostics.codes() == ["CDC001"]
    assert "gates" in next(iter(diagnostics)).message


def test_head_mixed_before_second_stage_is_flagged():
    diagnostics = _cdc_case("""
  reg i1$ %q_b, %pqa rise %pb after %t0
  %pqb = prb i1$ %q_b
  %x = xor i1 %pqb, %pown
  %q_b2 = sig i1 %z
  reg i1$ %q_b2, %x rise %pb after %t0
""")
    assert diagnostics.codes() == ["CDC001"]
    assert "mixed" in next(iter(diagnostics)).message


# -- static-model corners ------------------------------------------------------


def test_del_instruction_builds_an_edge():
    module = parse_module("""
entity @t () -> () {
  %z = const i8 0
  %t0 = const time 0s
  %s = sig i8 %z
  %d = del i8$ %s after %t0
}
""")
    model = DesignModel(module, "t")
    assert any(clazz == "del" for _, clazz, _ in
               (d.key for d in model.drivers))
    assert not len(lint_module(module, "t"))


def test_cone_follows_heap_stores():
    # A zero-delay self-dependency routed through alloc/st/ld memory
    # must still be seen as a combinational loop.
    diagnostics = lint_text("""
proc @p () -> (i1$ %q) {
entry:
  %z = const i1 0
  %t0 = const time 0s
  %pq = prb i1$ %q
  %nq = not i1 %pq
  %v = alloc i1 %z
  st i1* %v, %nq
  %l = ld i1* %v
  drv i1$ %q, %l after %t0
  wait %entry for %q
}
entity @top () -> () {
  %z = const i1 0
  %q = sig i1 %z
  inst @p () -> (i1$ %q)
}
""", "top")
    assert diagnostics.codes() == ["LOOP001"]


def test_unknown_top_rejected():
    module = parse_module("entity @t () -> () {\n}")
    with pytest.raises(ValueError):
        DesignModel(module, "nope")


def test_non_entity_top_rejected():
    module = parse_module("""
proc @p () -> () {
entry:
  halt
}
""")
    with pytest.raises(ValueError):
        DesignModel(module, "p")


def test_structural_level_lints_clean():
    assert not len(lint_design("gray", level="structural"))
