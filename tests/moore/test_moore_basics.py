"""Moore frontend: compile small SystemVerilog designs and simulate them."""

import pytest

from repro.ir import print_module, verify_module
from repro.moore import compile_sv
from repro.sim import simulate

COUNTER = """
module counter (input clk, input rst, output logic [7:0] count);
  always_ff @(posedge clk) begin
    if (rst)
      count <= 8'd0;
    else
      count <= count + 8'd1;
  end
endmodule

module counter_tb;
  bit clk, rst;
  bit [7:0] count;
  counter dut (.clk(clk), .rst(rst), .count(count));
  initial begin
    automatic int i = 0;
    rst = 1;
    #2ns;
    clk = 1;
    #2ns;
    clk = 0;
    rst = 0;
    while (i < 10) begin
      #2ns;
      clk = 1;
      #2ns;
      clk = 0;
      i++;
    end
    $finish;
  end
endmodule
"""


def test_counter_compiles_and_verifies():
    module = compile_sv(COUNTER)
    verify_module(module)
    assert module.get("counter").is_entity
    assert module.get("counter_tb").is_entity
    text = print_module(module)
    assert "proc" in text and "entity" in text


def test_counter_simulates_correctly():
    module = compile_sv(COUNTER)
    result = simulate(module, "counter_tb")
    # Reset pulse, then 10 rising edges.
    final = result.trace.history("counter_tb.count")[-1][1]
    assert final == 10


def test_counter_traces_agree_across_backends():
    module = compile_sv(COUNTER)
    interp = simulate(module, "counter_tb", backend="interp")
    blaze = simulate(module, "counter_tb", backend="blaze")
    cycle = simulate(module, "counter_tb", backend="cycle")
    assert interp.trace.differences(blaze.trace) == []
    assert interp.trace.differences(cycle.trace) == []


COMBINATIONAL = """
module addsub (input logic [15:0] a, input logic [15:0] b,
               input logic sel, output logic [15:0] y);
  always_comb begin
    y = a + b;
    if (sel)
      y = a - b;
  end
endmodule

module addsub_tb;
  logic [15:0] a, b, y;
  logic sel;
  addsub dut (.*);
  initial begin
    a = 16'd100; b = 16'd30; sel = 0;
    #2ns;
    assert (y == 16'd130);
    sel = 1;
    #2ns;
    assert (y == 16'd70);
  end
endmodule
"""


def test_always_comb_blocking_semantics():
    module = compile_sv(COMBINATIONAL)
    result = simulate(module, "addsub_tb")
    assert result.assertion_failures == []


PARAMETRIC = """
module adder #(parameter int W = 8)
              (input logic [W-1:0] a, input logic [W-1:0] b,
               output logic [W-1:0] y);
  assign y = a + b;
endmodule

module top;
  logic [7:0] a8, b8, y8;
  logic [15:0] a16, b16, y16;
  adder dut8 (.a(a8), .b(b8), .y(y8));
  adder #(.W(16)) dut16 (.a(a16), .b(b16), .y(y16));
  initial begin
    a8 = 8'd200; b8 = 8'd100;     // wraps to 44 in 8 bits
    a16 = 16'd200; b16 = 16'd100;
    #2ns;
    assert (y8 == 8'd44);
    assert (y16 == 16'd300);
  end
endmodule
"""


def test_parameter_specialization():
    module = compile_sv(PARAMETRIC)
    assert module.get("adder") is not None
    specialized = [u.name for u in module
                   if u.name.startswith("adder__")]
    assert len(specialized) == 1
    result = simulate(module, "top")
    assert result.assertion_failures == []


GENERATE = """
module xorstage (input logic a, input logic b, output logic y);
  assign y = a ^ b;
endmodule

module xorchain #(parameter int N = 4)
                 (input logic [N-1:0] bits, output logic parity);
  logic [N:0] partial;
  assign partial[0] = 1'b0;
  for (genvar i = 0; i < N; i++) begin : stage
    xorstage s (.a(partial[i]), .b(bits[i]), .y(partial[i+1]));
  end
  assign parity = partial[N];
endmodule

module gen_tb;
  logic [3:0] bits;
  logic parity;
  xorchain dut (.bits(bits), .parity(parity));
  initial begin
    bits = 4'b1011;
    #4ns;
    assert (parity == 1'b1);
    bits = 4'b1111;
    #4ns;
    assert (parity == 1'b0);
  end
endmodule
"""


def test_generate_for_unrolls_instances():
    module = compile_sv(GENERATE)
    result = simulate(module, "gen_tb")
    assert result.assertion_failures == []


FUNCTIONS = """
module alu_tb;
  logic [31:0] r;

  function [31:0] clamp(input [31:0] x, input [31:0] hi);
    if (x > hi)
      clamp = hi;
    else
      clamp = x;
  endfunction

  initial begin
    r = clamp(32'd500, 32'd255);
    assert (r == 32'd255);
    r = clamp(32'd7, 32'd255);
    assert (r == 32'd7);
  end
endmodule
"""


def test_function_declaration_and_call():
    module = compile_sv(FUNCTIONS)
    result = simulate(module, "alu_tb")
    assert result.assertion_failures == []


CASE_MEMORY = """
module regfile_tb;
  logic [7:0] mem [4];
  logic [7:0] out;
  logic [1:0] addr;
  initial begin
    mem[0] = 8'd10;
    mem[1] = 8'd20;
    mem[2] = 8'd30;
    mem[3] = 8'd40;
    addr = 2'd2;
    #1ns;
    out = mem[addr];
    assert (out == 8'd30);
    case (addr)
      2'd0: out = 8'd1;
      2'd2: out = 8'd3;
      default: out = 8'd0;
    endcase
    assert (out == 8'd3);
  end
endmodule
"""


def test_array_indexing_and_case():
    module = compile_sv(CASE_MEMORY)
    result = simulate(module, "regfile_tb")
    assert result.assertion_failures == []
