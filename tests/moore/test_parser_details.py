"""Moore parser: AST shapes, literals, precedence, and error reporting."""

import pytest

from repro.moore import MooreSyntaxError, parse_source
from repro.moore import ast
from repro.moore.lexer import parse_based_literal, tokenize


def _first_module(text):
    return parse_source(text).modules[0]


def test_based_literals():
    assert parse_based_literal("8'hFF") == (8, 255, False)
    assert parse_based_literal("4'b1010") == (4, 10, False)
    assert parse_based_literal("32'd15") == (32, 15, False)
    assert parse_based_literal("'hA") == (None, 10, False)
    assert parse_based_literal("4'b1x1z") == (4, 0b1010, True)
    assert parse_based_literal("16'hDEAD") == (16, 0xDEAD, False)
    assert parse_based_literal("8'h_F_F") == (8, 255, False)


def test_operator_precedence():
    module = _first_module("""
    module m;
      logic [7:0] a, b, c, y;
      assign y = a + b * c;
    endmodule
    """)
    assign = next(i for i in module.items
                  if isinstance(i, ast.ContinuousAssign))
    assert isinstance(assign.value, ast.Binary)
    assert assign.value.op == "+"
    assert assign.value.rhs.op == "*"


def test_ternary_is_right_associative():
    module = _first_module("""
    module m;
      logic a, b, y;
      assign y = a ? b : a ? a : b;
    endmodule
    """)
    assign = next(i for i in module.items
                  if isinstance(i, ast.ContinuousAssign))
    assert isinstance(assign.value, ast.Ternary)
    assert isinstance(assign.value.if_false, ast.Ternary)


def test_nonblocking_vs_lessequal():
    module = _first_module("""
    module m (input clk);
      logic [7:0] q, d;
      logic ok;
      always_ff @(posedge clk) begin
        q <= d;
        ok <= q <= d;
      end
    endmodule
    """)
    always = next(i for i in module.items
                  if isinstance(i, ast.AlwaysBlock))
    stmts = always.body.statements
    assert isinstance(stmts[0], ast.Assign) and not stmts[0].blocking
    assert isinstance(stmts[1].value, ast.Binary)
    assert stmts[1].value.op == "<="


def test_replication_inside_concat():
    module = _first_module("""
    module m;
      logic [31:0] instr, imm;
      assign imm = {{20{instr[31]}}, instr[31:20]};
    endmodule
    """)
    assign = next(i for i in module.items
                  if isinstance(i, ast.ContinuousAssign))
    assert isinstance(assign.value, ast.Concat)
    assert isinstance(assign.value.parts[0], ast.Replicate)
    assert isinstance(assign.value.parts[1], ast.PartSelect)


def test_wildcard_connection():
    module = _first_module("""
    module m;
      logic a;
      sub s (.*);
    endmodule
    """)
    inst = next(i for i in module.items
                if isinstance(i, ast.Instantiation))
    assert inst.wildcard


def test_parameter_override_parses():
    module = _first_module("""
    module m;
      sub #(.W(16), .D(4)) s (.a(a));
    endmodule
    """)
    inst = next(i for i in module.items
                if isinstance(i, ast.Instantiation))
    assert [n for n, _ in inst.param_overrides] == ["W", "D"]


def test_do_while_with_postincrement():
    module = _first_module("""
    module m;
      int i;
      initial begin
        do begin
          i = i;
        end while (i++ < 10);
      end
    endmodule
    """)
    always = next(i for i in module.items
                  if isinstance(i, ast.AlwaysBlock))
    dw = always.body.statements[0]
    assert isinstance(dw, ast.DoWhile)
    assert isinstance(dw.cond.lhs, ast.PostIncrement)


def test_syntax_error_reports_line():
    with pytest.raises(MooreSyntaxError) as excinfo:
        parse_source("module m;\n  assign = 1;\nendmodule")
    assert excinfo.value.line == 2


def test_unterminated_module():
    with pytest.raises(MooreSyntaxError):
        parse_source("module m; logic a;")


def test_time_literal_token():
    tokens = tokenize("#1.5ns;")
    kinds = [t.kind for t in tokens]
    assert "time" in kinds


def test_case_with_multiple_labels():
    module = _first_module("""
    module m;
      logic [1:0] s;
      logic y;
      always_comb begin
        case (s)
          2'd0, 2'd1: y = 1'b0;
          default: y = 1'b1;
        endcase
      end
    endmodule
    """)
    always = next(i for i in module.items
                  if isinstance(i, ast.AlwaysBlock))
    case = always.body.statements[0]
    labels, _ = case.items[0]
    assert len(labels) == 2
