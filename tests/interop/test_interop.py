"""Interop: Table 3 introspection, Verilog export, technology mapping."""

import pytest

from repro.interop import (
    TechmapError, export_verilog, full_table, llhd_row, netlist_design,
    render_table, technology_map,
)
from repro.ir import (
    NETLIST, STRUCTURAL, classify, link_modules, parse_module,
    verify_module,
)


def test_llhd_row_matches_paper():
    """LLHD's Table 3 row: 3 levels, every feature ✓."""
    row = llhd_row()
    assert row[0] == "3"
    assert all(row[1:])


def test_full_table_has_all_irs():
    table = full_table()
    assert set(table) == {
        "LLHD [us]", "FIRRTL", "CoreIR", "µIR", "RTLIL", "LNAST",
        "LGraph", "netlistDB"}


def test_render_table_shape():
    text = render_table()
    assert "LLHD" in text and "FIRRTL" in text
    assert "✓" in text and "–" in text


STRUCTURAL_ACC = """
entity @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
  %qp = prb i32$ %q
  %xp = prb i32$ %x
  %enp = prb i1$ %en
  %sum = add i32 %qp, %xp
  %delay = const time 2ns
  %dns = [i32 %qp, %sum]
  %dn = mux i32 %dns, %enp
  drv i32$ %d, %dn after %delay
}
entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
  %delay = const time 1ns
  %clkp = prb i1$ %clk
  %dp = prb i32$ %d
  reg i32$ %q, %dp rise %clkp after %delay
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  %qi = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %qi)
  inst @acc_comb (i32$ %qi, i32$ %x, i1$ %en) -> (i32$ %d)
  %qip = prb i32$ %qi
  %t0 = const time 0s
  drv i32$ %q, %qip after %t0
}
"""


def test_verilog_export_of_structural_accumulator():
    module = parse_module(STRUCTURAL_ACC)
    verify_module(module, level=STRUCTURAL)
    text = export_verilog(module)
    assert "module acc_comb" in text
    assert "module acc_ff" in text
    assert "always @(posedge clkp)" in text or "always @(posedge" in text
    assert "assign" in text
    assert text.count("endmodule") == 3


def test_verilog_export_rejects_behavioural():
    from repro.interop import VerilogExportError

    module = parse_module("""
    proc @p (i8$ %a) -> (i8$ %b) {
    entry:
      halt
    }
    """)
    with pytest.raises(VerilogExportError):
        export_verilog(module)


def test_techmap_produces_valid_netlist():
    module = parse_module("""
    entity @comb (i8$ %a, i8$ %b) -> (i8$ %y) {
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %sum = add i8 %ap, %bp
      %t = const time 0s
      drv i8$ %y, %sum after %t
    }
    """)
    netlist, library = technology_map(module)
    assert classify(netlist) == NETLIST
    # The netlist instantiates a declared adder cell (typed i8 x i8).
    comb = netlist.get("comb")
    insts = [i for i in comb.body if i.opcode == "inst"]
    assert any(i.callee == "cell_add_i8_i8" for i in insts)


def test_techmapped_netlist_simulates_like_structural():
    from repro.sim import simulate

    source = """
    entity @comb (i8$ %a, i8$ %b) -> (i8$ %y) {
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %sum = add i8 %ap, %bp
      %t = const time 0s
      drv i8$ %y, %sum after %t
    }
    """
    tb = """
    entity @top () -> () {
      %z8 = const i8 0
      %a = sig i8 %z8
      %b = sig i8 %z8
      %y = sig i8 %z8
      inst @comb (i8$ %a, i8$ %b) -> (i8$ %y)
      inst @stim () -> (i8$ %a, i8$ %b)
    }
    proc @stim () -> (i8$ %a, i8$ %b) {
    entry:
      %v1 = const i8 33
      %v2 = const i8 9
      %t = const time 1ns
      drv i8$ %a, %v1 after %t
      drv i8$ %b, %v2 after %t
      halt
    }
    """
    structural = parse_module(source + tb)
    ref = simulate(structural, "top")
    assert ref.trace.history("top.y")[-1][1] == 42

    netlist, library = technology_map(parse_module(source))
    linked = link_modules([netlist, parse_module(tb), library])
    low = simulate(linked, "top")
    assert low.trace.history("top.y")[-1][1] == 42


# -- four-state and sequential technology mapping ------------------------------


NINE_VALUED_COMB = """
entity @lcomb (l8$ %a, l8$ %b) -> (l8$ %y, i1$ %same) {
  %ap = prb l8$ %a
  %bp = prb l8$ %b
  %x = xor l8 %ap, %bp
  %n = not l8 %x
  %eq = eq l8 %ap, %bp
  %t = const time 0s
  drv l8$ %y, %n after %t
  drv i1$ %same, %eq after %t
}
"""


def test_techmap_maps_nine_valued_operators_onto_typed_cells():
    module = parse_module(NINE_VALUED_COMB)
    netlist, library = technology_map(module)
    assert classify(netlist) == NETLIST
    insts = [i for i in netlist.get("lcomb").body if i.opcode == "inst"]
    callees = sorted(i.callee for i in insts)
    assert "cell_xor_l8_l8" in callees
    assert "cell_not_l8" in callees
    assert "cell_eq_l8_l8" in callees
    # The library holds behavioural lN cell models.
    assert library.get("cell_xor_l8_l8") is not None


def test_techmap_maps_reg_onto_storage_cell():
    module = parse_module("""
    entity @ff (l1$ %clk, l8$ %d) -> (l8$ %q) {
      %t = const time 0s
      %clkp = prb l1$ %clk
      %dp = prb l8$ %d
      reg l8$ %q, %dp rise %clkp after %t
    }
    """)
    netlist, library = technology_map(module)
    assert classify(netlist) == NETLIST
    insts = [i for i in netlist.get("ff").body if i.opcode == "inst"]
    assert len(insts) == 1
    cell = library.get(insts[0].callee)
    assert cell is not None
    regs = [i for i in cell.body if i.opcode == "reg"]
    assert len(regs) == 1
    assert next(regs[0].reg_triggers())["mode"] == "rise"


def test_techmap_preserves_nonzero_drive_delays_with_del():
    module = parse_module("""
    entity @dly (i8$ %a) -> (i8$ %y) {
      %ap = prb i8$ %a
      %t = const time 3ns
      drv i8$ %y, %ap after %t
    }
    """)
    netlist, _ = technology_map(module)
    ops = [i.opcode for i in netlist.get("dly").body]
    assert "del" in ops and "con" in ops


def test_techmap_rejects_conditional_drives():
    module = parse_module("""
    entity @cond (i8$ %a, i1$ %c) -> (i8$ %y) {
      %ap = prb i8$ %a
      %cp = prb i1$ %c
      %t = const time 0s
      drv i8$ %y, %ap after %t if %cp
    }
    """)
    with pytest.raises(TechmapError, match="conditional drives"):
        technology_map(module)


def test_wide_logic_gates_compose_as_shared_pairs():
    """An `l32` AND cell is not a monolithic per-width model: its body
    instantiates a pair of `l16` gate cells over the low/high slices,
    which recurse down to the `l8` monolithic floor — and the traces
    stay exact (a slice of the packed planes is the planes of the
    slice)."""
    from repro.sim import simulate

    source = """
    entity @g (l32$ %a, l32$ %b) -> (l32$ %y) {
      %ap = prb l32$ %a
      %bp = prb l32$ %b
      %r = and l32 %ap, %bp
      %t = const time 0s
      drv l32$ %y, %r after %t
    }

    proc @tb (l32$ %y) -> (l32$ %a, l32$ %b) {
    entry:
      %t1 = const time 1ns
      %v1 = const l32 "1010101010101010XXXXZZZZ01010101"
      %v2 = const l32 "11111111000000001111111100000000"
      drv l32$ %a, %v1 after %t1
      drv l32$ %b, %v2 after %t1
      wait %done for %y
    done:
      halt
    }

    entity @top () -> () {
      %z = const l32 "00000000000000000000000000000000"
      %a = sig l32 %z
      %b = sig l32 %z
      %y = sig l32 %z
      inst @g (l32$ %a, l32$ %b) -> (l32$ %y)
      inst @tb (l32$ %y) -> (l32$ %a, l32$ %b)
    }
    """
    ref = simulate(parse_module(source), "top")
    module = parse_module(source)
    linked = netlist_design(module, pairwise_gates=True)
    low = simulate(linked, "top")
    assert ref.trace.differences(low.trace) == []
    wide = next(u for u in linked
                if u.name.startswith("cell_and") and "l32" in u.name)
    insts = [i for i in wide.body if i.opcode == "inst"]
    assert len(insts) == 2  # the pair of l16 halves
    assert all("l16" in i.callee for i in insts)
    half = next(u for u in linked
                if u.name.startswith("cell_and") and "l16" in u.name)
    assert all("l8" in i.callee for i in half.body
               if i.opcode == "inst")
    leaf = next(u for u in linked
                if u.name.startswith("cell_and") and u.name.endswith("l8_l8"))
    assert not any(i.opcode == "inst" for i in leaf.body)  # monolithic
    # The simulation-oriented flow keeps gates monolithic by default:
    # composed cells trade library size for event count.
    plain = netlist_design(parse_module(source))
    mono = next(u for u in plain
                if u.name.startswith("cell_and") and "l32" in u.name)
    assert not any(i.opcode == "inst" for i in mono.body)


def test_nway_mux_maps_to_a_single_cell():
    source = """
    entity @m (i8$ %v0, i8$ %v1, i8$ %v2, i8$ %v3, i2$ %s) -> (i8$ %y) {
      %p0 = prb i8$ %v0
      %p1 = prb i8$ %v1
      %p2 = prb i8$ %v2
      %p3 = prb i8$ %v3
      %sp = prb i2$ %s
      %arr = [i8 %p0, %p1, %p2, %p3]
      %r = mux i8 %arr, %sp
      %t = const time 0s
      drv i8$ %y, %r after %t
    }
    """
    module = parse_module(source)
    netlist, library = technology_map(module)
    mux_cells = [u for u in library if u.name.startswith("cell_mux")]
    assert len(mux_cells) == 1
    assert len(mux_cells[0].inputs) == 5  # 4 choices + selector


def test_techmap_maps_non_constant_shifts_to_barrel_cells():
    module = parse_module("""
    entity @sh (i8$ %a, i32$ %n) -> (i8$ %y) {
      %ap = prb i8$ %a
      %np = prb i32$ %n
      %s = shl i8 %ap, %np
      %t = const time 0s
      drv i8$ %y, %s after %t
    }
    """)
    netlist, library = technology_map(module)
    cells = [u.name for u in library]
    assert any("shl" in name for name in cells), cells
    # The barrel cell takes the amount as a second input (no static attr).
    shifter = next(u for u in library if "shl" in u.name)
    assert len(shifter.inputs) == 2


def test_techmap_rejects_behavioural_input_by_default():
    module = parse_module("""
    proc @p (i8$ %a) -> (i8$ %b) {
    entry:
      halt
    }
    """)
    with pytest.raises(TechmapError, match="not Structural"):
        technology_map(module)


def test_netlist_design_carries_testbench_processes():
    from repro.sim import simulate

    module = parse_module("""
    entity @inc (l8$ %a) -> (l8$ %y) {
      %ap = prb l8$ %a
      %one = const l8 "00000001"
      %sum = add l8 %ap, %one
      %t = const time 0s
      drv l8$ %y, %sum after %t
    }
    entity @top () -> () {
      %z = const l8 "00000000"
      %a = sig l8 %z
      %y = sig l8 %z
      inst @inc (l8$ %a) -> (l8$ %y)
      inst @stim () -> (l8$ %a)
    }
    proc @stim () -> (l8$ %a) {
    entry:
      %v = const l8 "00101001"
      %t = const time 1ns
      drv l8$ %a, %v after %t
      halt
    }
    """)
    linked = netlist_design(module)
    result = simulate(linked, "top")
    final = result.trace.history("top.y")[-1][1]
    assert final.to_int() == 42


def test_netlist_design_propagates_unknowns_through_gates():
    """An X on a netlist input degrades the lN adder cell to all-X,
    exactly like the structural entity it replaced."""
    from repro.sim import simulate

    module = parse_module("""
    entity @inc (l8$ %a) -> (l8$ %y) {
      %ap = prb l8$ %a
      %one = const l8 "00000001"
      %sum = add l8 %ap, %one
      %t = const time 0s
      drv l8$ %y, %sum after %t
    }
    entity @top () -> () {
      %z = const l8 "00000000"
      %a = sig l8 %z
      %y = sig l8 %z
      inst @inc (l8$ %a) -> (l8$ %y)
      inst @stim () -> (l8$ %a)
    }
    proc @stim () -> (l8$ %a) {
    entry:
      %v = const l8 "0010X001"
      %t = const time 1ns
      drv l8$ %a, %v after %t
      halt
    }
    """)
    linked = netlist_design(module)
    result = simulate(linked, "top")
    final = result.trace.history("top.y")[-1][1]
    assert str(final) == "XXXXXXXX"


def test_netlist_design_preserves_nonzero_signal_initials():
    """Regression: cell result nets used to be seeded with zero, and
    con-ing them onto a target whose sig initial is nonzero crashed
    elaboration with 'conflicting initial values'."""
    from repro.sim import simulate

    module = parse_module("""
    entity @comb (i8$ %a) -> () {
      %five = const i8 5
      %y = sig i8 %five
      %ap = prb i8$ %a
      %one = const i8 1
      %s = add i8 %ap, %one
      %t = const time 0s
      drv i8$ %y, %s after %t
    }
    entity @top () -> () {
      %z = const i8 0
      %a = sig i8 %z
      inst @comb (i8$ %a) -> ()
      inst @stim () -> (i8$ %a)
    }
    proc @stim () -> (i8$ %a) {
    entry:
      %v = const i8 41
      %t = const time 1ns
      drv i8$ %a, %v after %t
      halt
    }
    """)
    linked = netlist_design(module)
    result = simulate(linked, "top")
    assert result.trace.history("top.comb.y")[-1][1] == 42


def test_netlist_design_buffers_conflicting_target_initials():
    """One mapped value driven onto two targets with different nonzero
    initials, and a constant drive onto a differently-initialized net:
    each target keeps its own initial via a buffer cell instead of
    crashing the con merge at elaboration."""
    from repro.sim import simulate

    module = parse_module("""
    entity @comb (i8$ %a) -> () {
      %five = const i8 5
      %seven = const i8 7
      %nine = const i8 9
      %three = const i8 3
      %y1 = sig i8 %five
      %y2 = sig i8 %seven
      %yc = sig i8 %nine
      %ap = prb i8$ %a
      %one = const i8 1
      %s = add i8 %ap, %one
      %t = const time 0s
      drv i8$ %y1, %s after %t
      drv i8$ %y2, %s after %t
      drv i8$ %yc, %three after %t
    }
    entity @top () -> () {
      %z = const i8 0
      %a = sig i8 %z
      inst @comb (i8$ %a) -> ()
      inst @stim () -> (i8$ %a)
    }
    proc @stim () -> (i8$ %a) {
    entry:
      %v = const i8 41
      %t = const time 1ns
      drv i8$ %a, %v after %t
      halt
    }
    """)
    linked = netlist_design(module)
    result = simulate(linked, "top")
    assert result.trace.history("top.comb.y1")[-1][1] == 42
    assert result.trace.history("top.comb.y2")[-1][1] == 42
    assert result.trace.history("top.comb.yc")[-1][1] == 3
