"""Interop: Table 3 introspection, Verilog export, technology mapping."""

import pytest

from repro.interop import (
    export_verilog, full_table, llhd_row, render_table, technology_map,
)
from repro.ir import (
    NETLIST, STRUCTURAL, classify, link_modules, parse_module,
    verify_module,
)


def test_llhd_row_matches_paper():
    """LLHD's Table 3 row: 3 levels, every feature ✓."""
    row = llhd_row()
    assert row[0] == "3"
    assert all(row[1:])


def test_full_table_has_all_irs():
    table = full_table()
    assert set(table) == {
        "LLHD [us]", "FIRRTL", "CoreIR", "µIR", "RTLIL", "LNAST",
        "LGraph", "netlistDB"}


def test_render_table_shape():
    text = render_table()
    assert "LLHD" in text and "FIRRTL" in text
    assert "✓" in text and "–" in text


STRUCTURAL_ACC = """
entity @acc_comb (i32$ %q, i32$ %x, i1$ %en) -> (i32$ %d) {
  %qp = prb i32$ %q
  %xp = prb i32$ %x
  %enp = prb i1$ %en
  %sum = add i32 %qp, %xp
  %delay = const time 2ns
  %dns = [i32 %qp, %sum]
  %dn = mux i32 %dns, %enp
  drv i32$ %d, %dn after %delay
}
entity @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %q) {
  %delay = const time 1ns
  %clkp = prb i1$ %clk
  %dp = prb i32$ %d
  reg i32$ %q, %dp rise %clkp after %delay
}
entity @acc (i1$ %clk, i32$ %x, i1$ %en) -> (i32$ %q) {
  %zero = const i32 0
  %d = sig i32 %zero
  %qi = sig i32 %zero
  inst @acc_ff (i1$ %clk, i32$ %d) -> (i32$ %qi)
  inst @acc_comb (i32$ %qi, i32$ %x, i1$ %en) -> (i32$ %d)
  %qip = prb i32$ %qi
  %t0 = const time 0s
  drv i32$ %q, %qip after %t0
}
"""


def test_verilog_export_of_structural_accumulator():
    module = parse_module(STRUCTURAL_ACC)
    verify_module(module, level=STRUCTURAL)
    text = export_verilog(module)
    assert "module acc_comb" in text
    assert "module acc_ff" in text
    assert "always @(posedge clkp)" in text or "always @(posedge" in text
    assert "assign" in text
    assert text.count("endmodule") == 3


def test_verilog_export_rejects_behavioural():
    from repro.interop import VerilogExportError

    module = parse_module("""
    proc @p (i8$ %a) -> (i8$ %b) {
    entry:
      halt
    }
    """)
    with pytest.raises(VerilogExportError):
        export_verilog(module)


def test_techmap_produces_valid_netlist():
    module = parse_module("""
    entity @comb (i8$ %a, i8$ %b) -> (i8$ %y) {
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %sum = add i8 %ap, %bp
      %t = const time 0s
      drv i8$ %y, %sum after %t
    }
    """)
    netlist, library = technology_map(module)
    assert classify(netlist) == NETLIST
    # The netlist instantiates a declared adder cell.
    comb = netlist.get("comb")
    insts = [i for i in comb.body if i.opcode == "inst"]
    assert any(i.callee == "cell_add_8" for i in insts)


def test_techmapped_netlist_simulates_like_structural():
    from repro.sim import simulate

    source = """
    entity @comb (i8$ %a, i8$ %b) -> (i8$ %y) {
      %ap = prb i8$ %a
      %bp = prb i8$ %b
      %sum = add i8 %ap, %bp
      %t = const time 0s
      drv i8$ %y, %sum after %t
    }
    """
    tb = """
    entity @top () -> () {
      %z8 = const i8 0
      %a = sig i8 %z8
      %b = sig i8 %z8
      %y = sig i8 %z8
      inst @comb (i8$ %a, i8$ %b) -> (i8$ %y)
      inst @stim () -> (i8$ %a, i8$ %b)
    }
    proc @stim () -> (i8$ %a, i8$ %b) {
    entry:
      %v1 = const i8 33
      %v2 = const i8 9
      %t = const time 1ns
      drv i8$ %a, %v1 after %t
      drv i8$ %b, %v2 after %t
      halt
    }
    """
    structural = parse_module(source + tb)
    ref = simulate(structural, "top")
    assert ref.trace.history("top.y")[-1][1] == 42

    netlist, library = technology_map(parse_module(source))
    linked = link_modules([netlist, parse_module(tb), library])
    low = simulate(linked, "top")
    assert low.trace.history("top.y")[-1][1] == 42
